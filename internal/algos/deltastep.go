package algos

import (
	"encoding/json"
	"fmt"
	"sort"

	"swbfs/internal/ckpt"
	"swbfs/internal/comm"
	"swbfs/internal/core"
	"swbfs/internal/graph"
)

// Delta-stepping SSSP (Meyer & Sanders) on the simulated machine: vertices
// are processed in buckets of tentative-distance width delta; within a
// bucket, light edges (weight <= delta) are relaxed iteratively (they can
// re-insert into the same bucket), then heavy edges once. Compared with
// the frontier Bellman-Ford in sssp.go it trades more rounds for far fewer
// wasted relaxations on weighted graphs — the classic work/step tradeoff,
// exposed here as an ablation on the same transports and timing model.

type deltaPhase int

const (
	phaseLight deltaPhase = iota
	phaseHeavy
)

type deltaNode struct {
	ctx     *NodeCtx
	weights []int64
	delta   int64

	dist []int64

	curBucket int64
	phase     deltaPhase
	done      bool

	lightReq map[int64]struct{} // current-bucket vertices to light-relax
	heavySet map[int64]struct{} // bucket members awaiting the heavy pass

	relaxed int64 // total edge relaxations performed (work measure)
}

// DeltaSSSPResult extends the SSSP output with work accounting.
type DeltaSSSPResult struct {
	Dist []int64
	Info *RunInfo
	// Relaxations counts the edge relaxations actually performed —
	// compare with the Bellman-Ford implementation's re-relaxation storm.
	Relaxations int64
	// Buckets is the number of distance buckets processed.
	Buckets int64
}

// DeltaSSSP computes single-source shortest paths with bucket width delta
// (0 picks maxWeight, degenerating to near-Dijkstra bucketing).
func DeltaSSSP(cfg core.Config, wg *graph.WeightedCSR, root graph.Vertex, delta int64) (*DeltaSSSPResult, error) {
	return deltaRun(cfg, wg, root, delta, nil)
}

// ResumeDeltaSSSP continues a checkpointed delta-stepping run over the
// same graph, root and delta; see RunOptions.Resume for the contract.
func ResumeDeltaSSSP(cfg core.Config, wg *graph.WeightedCSR, root graph.Vertex, delta int64, from *ckpt.Checkpoint) (*DeltaSSSPResult, error) {
	if from == nil {
		return nil, fmt.Errorf("algos: nil checkpoint")
	}
	return deltaRun(cfg, wg, root, delta, from)
}

func deltaRun(cfg core.Config, wg *graph.WeightedCSR, root graph.Vertex, delta int64, from *ckpt.Checkpoint) (*DeltaSSSPResult, error) {
	if root < 0 || int64(root) >= wg.N {
		return nil, fmt.Errorf("algos: SSSP root %d out of range", root)
	}
	if delta < 0 {
		return nil, fmt.Errorf("algos: negative delta %d", delta)
	}
	if delta == 0 {
		for _, w := range wg.Weights.W {
			if w > delta {
				delta = w
			}
		}
		if delta == 0 {
			delta = 1
		}
	}
	nodes := make([]*deltaNode, cfg.Nodes)
	info, err := Run(cfg, wg.CSR, RunOptions{Kernel: "delta-sssp", Root: root, Resume: from}, func(ctx *NodeCtx) (RoundAlgo, error) {
		n := ctx.Sub.NumVertices()
		dn := &deltaNode{
			ctx:      ctx,
			weights:  extractLocalWeights(wg, ctx),
			delta:    delta,
			dist:     make([]int64, n),
			lightReq: make(map[int64]struct{}),
			heavySet: make(map[int64]struct{}),
		}
		for i := range dn.dist {
			dn.dist[i] = InfDistance
		}
		if ctx.Part.Owner(root) == ctx.ID {
			local := ctx.Part.Local(root)
			dn.dist[local] = 0
			dn.lightReq[local] = struct{}{}
			dn.heavySet[local] = struct{}{}
		}
		nodes[ctx.ID] = dn
		return dn, nil
	})
	if err != nil {
		return nil, err
	}

	res := &DeltaSSSPResult{Dist: make([]int64, wg.N), Info: info}
	part := graph.NewRoundRobin(wg.N, cfg.Nodes)
	for v := graph.Vertex(0); int64(v) < wg.N; v++ {
		res.Dist[v] = nodes[part.Owner(v)].dist[part.Local(v)]
	}
	for _, dn := range nodes {
		res.Relaxations += dn.relaxed
	}
	if len(nodes) > 0 {
		res.Buckets = nodes[0].curBucket + 1
	}
	return res, nil
}

func (d *deltaNode) bucketOf(dist int64) int64 {
	if dist >= InfDistance {
		return -1
	}
	return dist / d.delta
}

func (d *deltaNode) Active() int64 {
	if d.done {
		return 0
	}
	return 1
}

func (d *deltaNode) Generate(round int, send Send) error {
	relax := func(local int64, light bool) error {
		dv := d.dist[local]
		lo, hi := d.ctx.Sub.RowPtr[local], d.ctx.Sub.RowPtr[local+1]
		for i := lo; i < hi; i++ {
			w := d.weights[i]
			if (w <= d.delta) != light {
				continue
			}
			d.relaxed++
			u := d.ctx.Sub.Col[i]
			if err := send(d.ctx.Part.Owner(u), comm.Pair{u, graph.Vertex(dv + w)}); err != nil {
				return err
			}
		}
		return nil
	}
	switch d.phase {
	case phaseLight:
		req := d.lightReq
		d.lightReq = make(map[int64]struct{})
		for _, local := range sortedLocals(req) {
			// Only relax if the vertex still belongs to the bucket (it
			// may have improved into an earlier, already-closed one —
			// then its edges were or will be handled there).
			if d.bucketOf(d.dist[local]) == d.curBucket {
				if err := relax(local, true); err != nil {
					return err
				}
			}
		}
	case phaseHeavy:
		set := d.heavySet
		d.heavySet = make(map[int64]struct{})
		for _, local := range sortedLocals(set) {
			if d.bucketOf(d.dist[local]) == d.curBucket {
				if err := relax(local, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedLocals flattens a request set into ascending vertex order. The
// kernel contract (docs/ALGORITHMS.md) requires a deterministic send order:
// on the relay transport, batch envelopes pack messages bound for different
// destinations together, so even per-destination-stable orders are not
// enough — map iteration order would leak into the modelled byte counts.
func sortedLocals(set map[int64]struct{}) []int64 {
	out := make([]int64, 0, len(set))
	for local := range set {
		out = append(out, local)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *deltaNode) Handle(round int, pairs []comm.Pair) error {
	for _, p := range pairs {
		u, nd := p[0], int64(p[1])
		local := d.ctx.Part.Local(u)
		if nd >= d.dist[local] {
			continue
		}
		d.dist[local] = nd
		if d.bucketOf(nd) == d.curBucket {
			d.lightReq[local] = struct{}{}
			d.heavySet[local] = struct{}{}
		}
		// Improvements into future buckets are found by the bucket scan
		// when that bucket opens.
	}
	return nil
}

func (d *deltaNode) EndRound(round int) error {
	switch d.phase {
	case phaseLight:
		// More light work in this bucket anywhere?
		pending := d.ctx.Net.AllreduceSum(int64(len(d.lightReq)))
		if pending == 0 {
			d.phase = phaseHeavy
		}
	case phaseHeavy:
		// Advance to the smallest non-empty bucket beyond the current one.
		localNext := d.nextBucket()
		// Global min via negated max; -1 (none) maps to MinInt sentinel.
		contrib := int64(-1 << 62)
		if localNext >= 0 {
			contrib = -localNext
		}
		next := -d.ctx.Net.AllreduceMax(contrib)
		if next >= 1<<62 {
			d.done = true
			return nil
		}
		d.curBucket = next
		d.phase = phaseLight
		d.fillBucket()
	}
	return nil
}

// deltaCkpt is the Checkpointer payload. The request sets serialize as
// sorted local lists (the canonical order Generate consumes them in).
type deltaCkpt struct {
	Dist      []int64 `json:"dist"`
	CurBucket int64   `json:"cur_bucket"`
	Phase     int     `json:"phase"`
	Done      bool    `json:"done"`
	LightReq  []int64 `json:"light_req"`
	HeavySet  []int64 `json:"heavy_set"`
	Relaxed   int64   `json:"relaxed"`
}

func (d *deltaNode) CheckpointState() (any, error) {
	return &deltaCkpt{
		Dist:      append([]int64(nil), d.dist...),
		CurBucket: d.curBucket,
		Phase:     int(d.phase),
		Done:      d.done,
		LightReq:  sortedLocals(d.lightReq),
		HeavySet:  sortedLocals(d.heavySet),
		Relaxed:   d.relaxed,
	}, nil
}

func (d *deltaNode) RestoreState(data []byte) error {
	var c deltaCkpt
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("delta-sssp state: %w", err)
	}
	if len(c.Dist) != len(d.dist) {
		return fmt.Errorf("delta-sssp state: %d distances, partition gives %d", len(c.Dist), len(d.dist))
	}
	copy(d.dist, c.Dist)
	d.curBucket = c.CurBucket
	d.phase = deltaPhase(c.Phase)
	d.done = c.Done
	d.lightReq = make(map[int64]struct{}, len(c.LightReq))
	for _, local := range c.LightReq {
		d.lightReq[local] = struct{}{}
	}
	d.heavySet = make(map[int64]struct{}, len(c.HeavySet))
	for _, local := range c.HeavySet {
		d.heavySet[local] = struct{}{}
	}
	d.relaxed = c.Relaxed
	return nil
}

// nextBucket scans all local vertices for the smallest bucket beyond the
// current one, fanning the scan across ctx.Workers. The min-fold is
// order-independent, so the result is identical for every width.
func (d *deltaNode) nextBucket() int64 {
	n := d.ctx.Sub.NumVertices()
	mins := make([]int64, d.ctx.Workers)
	forEachShard(n, d.ctx.Workers, func(shard int, lo, hi int64) {
		min := int64(-1)
		for local := lo; local < hi; local++ {
			b := d.bucketOf(d.dist[local])
			if b > d.curBucket && (min == -1 || b < min) {
				min = b
			}
		}
		mins[shard] = min
	})
	next := int64(-1)
	for _, m := range mins {
		if m >= 0 && (next == -1 || m < next) {
			next = m
		}
	}
	return next
}

// fillBucket seeds the light/heavy request sets with the members of the
// freshly opened bucket. Workers collect members over contiguous vertex
// shards; the node goroutine folds them into the maps (set contents are
// order-independent, so any fold order gives identical state).
func (d *deltaNode) fillBucket() {
	n := d.ctx.Sub.NumVertices()
	members := make([][]int64, d.ctx.Workers)
	forEachShard(n, d.ctx.Workers, func(shard int, lo, hi int64) {
		for local := lo; local < hi; local++ {
			if d.bucketOf(d.dist[local]) == d.curBucket {
				members[shard] = append(members[shard], local)
			}
		}
	})
	for _, shard := range members {
		for _, local := range shard {
			d.lightReq[local] = struct{}{}
			d.heavySet[local] = struct{}{}
		}
	}
}
