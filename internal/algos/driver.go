// Package algos implements the other irregular graph algorithms the paper
// names as direct beneficiaries of its techniques (Section 8: "the key
// operations of the distributed BFS can be viewed as shuffling dynamically
// generated data, which is also the major operation of many other graph
// algorithms, such as SSSP, WCC, PageRank, and K-core decomposition. All
// the three key techniques we used are readily applicable").
//
// Every algorithm here runs on exactly the same substrate as the BFS
// engine — the comm transports (direct or group-batched relay), the
// fat-tree traffic accounting, the perf timing model, the chaos fault
// injector and the observability sinks — via a shared round-synchronous
// SPMD driver: each round, every node generates messages from its active
// vertices, the transport batches and delivers them, handlers fold them
// into local state, and a sum-allreduce decides termination.
//
// The driver mirrors the BFS runner's operational contract (see
// docs/ALGORITHMS.md): live per-round events on the ProgressBroker, a
// reconciling RunTrace plus generator/handler module spans per run,
// chaos-injected faults with bounded retries, a per-round watchdog, and
// clean *core.AbortError teardown with the completed rounds attached.
package algos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swbfs/internal/chaos"
	"swbfs/internal/ckpt"
	"swbfs/internal/comm"
	"swbfs/internal/core"
	"swbfs/internal/fabric"
	"swbfs/internal/graph"
	"swbfs/internal/obs"
	"swbfs/internal/perf"
	"swbfs/internal/sw"
)

// DefaultMaxRounds guards against non-converging algorithm bugs.
const DefaultMaxRounds = 100000

var errAborted = errors.New("algos: run aborted by peer failure")

// NodeCtx is one node's view of the machine, handed to algorithm
// constructors.
type NodeCtx struct {
	ID   int
	Part graph.Partition
	Sub  *graph.LocalSubgraph
	Net  *comm.Network // collectives (all nodes must call symmetrically)
	// Workers is the resolved host worker-pool width (core.Config.Workers
	// with defaults applied) a kernel's hot loops may fan out over. The
	// contract is bit-identical output for every width — see the worker
	// parity rules in docs/ALGORITHMS.md.
	Workers int
}

// Global converts a local vertex index to its global ID.
func (c *NodeCtx) Global(local int64) graph.Vertex { return c.Part.Global(c.ID, local) }

// Send is the message emitter handed to Generate.
type Send func(dst int, p comm.Pair) error

// RoundAlgo is one node's algorithm instance.
type RoundAlgo interface {
	// Active returns this node's pending work; the round runs only while
	// the machine-wide sum is positive.
	Active() int64
	// Generate emits this node's messages for the round and retires the
	// work it announced via Active.
	Generate(round int, send Send) error
	// Handle folds one delivered batch into local state.
	Handle(round int, pairs []comm.Pair) error
	// EndRound runs after all of the round's traffic has been handled
	// (symmetric across nodes; collectives are allowed here).
	EndRound(round int) error
}

// RunOptions identifies and bounds one driver run.
type RunOptions struct {
	// MaxRounds guards against non-convergence (<= 0 selects
	// DefaultMaxRounds).
	MaxRounds int
	// Kernel names the algorithm for live events, metrics and abort
	// reports ("sssp", "wcc", ...).
	Kernel string
	// Root is the run's identity vertex, threaded into live events,
	// recorded traces and AbortError. Rootless kernels (WCC, PageRank,
	// K-core) pass graph.NoVertex.
	Root graph.Vertex
	// Resume, when non-nil, reconstructs the ensemble from a round-boundary
	// checkpoint instead of starting fresh: every node's kernel state is
	// restored through its Checkpointer hook and the loop re-enters at the
	// recorded round. The caller must rebuild the same graph and pass an
	// equivalent machine configuration (fingerprint-checked) and identical
	// kernel parameters; Workers, observers, timeouts and the chaos plan
	// are host-side and may differ. The completed run's RunInfo is bitwise
	// identical to an uninterrupted run's.
	Resume *ckpt.Checkpoint
}

// RunInfo is the machine-level outcome of a run.
type RunInfo struct {
	Rounds int
	Levels []perf.LevelStats
	// Time and the throughput helpers come from the perf model.
	Time float64
	// NetworkBytes and NetworkMessages total the wire traffic.
	NetworkBytes, NetworkMessages int64
	// MaxConnections is the peak per-node MPI connection count.
	MaxConnections int
	// Injections is the deterministically sorted log of the faults the
	// chaos injector fired during the run; nil without a chaos plan.
	Injections []chaos.Fault
}

// MTEPS returns millions of traversed edges per second for `edges`
// processed edge relaxations.
func (r *RunInfo) MTEPS(edges int64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(edges) / r.Time / 1e6
}

// runState is the cross-node shared state of one driver run.
type runState struct {
	mu   sync.Mutex
	info *RunInfo
	// lastSnap is node 0's counter snapshot after the final recorded
	// round; the delta to the end-of-run totals is the termination
	// traffic (the final emptiness allreduce) the trace reports
	// separately so its books balance.
	lastSnap fabric.Snapshot
	// roundTick feeds the watchdog: node 0 advances it once per
	// completed round.
	roundTick atomic.Int64
}

// Run executes one algorithm on the simulated machine described by cfg
// over graph g. makeAlgo constructs each node's instance.
//
// The run is driven through the same instrumented, chaos-aware path as
// the BFS engine: cfg.Chaos faults inject into every send, cfg.LevelTimeout
// arms a per-round watchdog, cfg.Obs receives live round events, a
// reconciling RunTrace and module spans, and a torn-down run returns a
// *core.AbortError carrying the original cause and the completed rounds.
func Run(cfg core.Config, g *graph.CSR, opts RunOptions, makeAlgo func(ctx *NodeCtx) (RoundAlgo, error)) (*RunInfo, error) {
	if err := core.ValidateConfig(cfg); err != nil {
		return nil, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	kernel := opts.Kernel
	if kernel == "" {
		kernel = "algo"
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = sw.DefaultWorkers(cfg.Nodes)
	}
	workers = sw.ClampWorkers(workers)

	if pb := cfg.Obs.ProgressOf(); pb != nil {
		pb.Publish(obs.LiveEvent{Kind: obs.EventRunStart, Root: int64(opts.Root), Kernel: kernel})
	}
	if sr := cfg.Obs.SpansOf(); sr != nil {
		sr.BeginRun(int64(opts.Root))
	}

	resume := opts.Resume
	mcfg := driverMachineConfig(cfg, g)
	if resume != nil {
		if err := validateResume(resume, kernel, opts.Root, mcfg, cfg.Nodes); err != nil {
			return nil, err
		}
	}

	// Flight recording is always on, exactly as in the BFS runner: shared
	// via the observer when attached there, private otherwise. A resume
	// reloads the checkpoint's rings instead of opening a new run, so the
	// post-resume dump covers the pre-checkpoint events under the original
	// run index.
	flight := cfg.Obs.FlightOf()
	if flight == nil {
		flight = obs.NewFlightRecorder(0)
	}
	if resume == nil {
		flight.BeginRun(int64(opts.Root), kernel, cfg.Nodes, cfg.Transport.String())
	} else {
		flight.RestoreState(resume.Machine.Flight)
	}

	// The injector is rebuilt per run so every Run against the same plan
	// replays the same faults — the determinism contract of docs/CHAOS.md,
	// identical to the BFS runner's per-root rebuild. A resume seeds the
	// log with the checkpoint's already-fired faults (and consumes them
	// from the schedule) so the final Injections match an uninterrupted
	// run; with no plan but a non-empty seeded log, an empty-schedule
	// injector still reports them.
	var inj *chaos.Injector
	if cfg.Chaos != nil {
		inj = chaos.NewInjector(*cfg.Chaos, cfg.Obs.MetricsOf())
		inj.SetFlight(flight)
	} else if resume != nil && len(resume.Machine.Injections) > 0 {
		inj = chaos.NewInjector(chaos.Plan{}, cfg.Obs.MetricsOf())
		inj.SetFlight(flight)
	}
	if inj != nil && resume != nil {
		inj.SeedLog(resume.Machine.Injections)
	}

	part := graph.NewRoundRobin(g.N, cfg.Nodes)
	net, err := comm.NewNetwork(comm.Config{
		Nodes:           cfg.Nodes,
		SuperNodeSize:   cfg.SuperNodeSize,
		BatchBytes:      cfg.BatchBytes,
		MPIMemoryBudget: cfg.MPIMemoryBudget,
		Codec:           cfg.Codec,
		CodecBackward:   cfg.CodecBackward,
		Chaos:           inj,
		Flight:          flight,
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()

	shape := comm.GroupShape{}
	if cfg.Transport == core.TransportRelay {
		if cfg.GroupM > 0 {
			shape, err = comm.NewGroupShape(cfg.Nodes, cfg.GroupM)
			if err != nil {
				return nil, err
			}
		} else {
			super := cfg.SuperNodeSize
			if super <= 0 {
				super = 256
			}
			shape = comm.DefaultGroupShape(cfg.Nodes, super)
		}
	}

	st := &runState{info: &RunInfo{}}
	startRound := 0
	if resume != nil {
		startRound = resume.Level
		st.info.Levels = append([]perf.LevelStats(nil), resume.Machine.Levels...)
		st.lastSnap = resume.Machine.LastSnap
		st.roundTick.Store(int64(startRound))
		if err := net.RestoreState(resume.Machine.Net); err != nil {
			return nil, err
		}
	}

	// The checkpoint latch: every boundary is captured in memory (backing
	// /debug/checkpoint and the abort auto-checkpoint); every
	// CheckpointEvery-th one is written to CheckpointPath. On a resume with
	// checkpointing off, the latch still carries the source checkpoint so a
	// second abort reports the newest usable boundary.
	var ck *driverCkpt
	if cfg.CheckpointEvery > 0 || resume != nil {
		ck = &driverCkpt{
			every:  cfg.CheckpointEvery,
			path:   cfg.CheckpointPath,
			kernel: kernel,
			root:   int64(opts.Root),
			nodes:  cfg.Nodes,
			config: mcfg,
			net:    net,
			inj:    inj,
			flight: flight,
			st:     st,
			latest: resume,
		}
		if cfg.CheckpointEvery > 0 && cfg.Obs != nil {
			cfg.Obs.Checkpoint = ck
		}
	}

	nodes := make([]*nodeRun, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ctx := &NodeCtx{
			ID:      i,
			Part:    part,
			Sub:     graph.ExtractLocal(g, part, i),
			Net:     net,
			Workers: workers,
		}
		algo, err := makeAlgo(ctx)
		if err != nil {
			return nil, fmt.Errorf("algos: node %d: %w", i, err)
		}
		var ep comm.Endpoint
		if cfg.Transport == core.TransportRelay {
			rep, err := comm.NewRelayEndpoint(net, i, shape)
			if err != nil {
				return nil, err
			}
			rep.SetFlowSink(cfg.Obs.SpansOf())
			ep = rep
		} else {
			ep = comm.NewDirectEndpoint(net, i)
		}
		nodes[i] = &nodeRun{
			ctx: ctx, algo: algo, ep: ep, net: net, st: st,
			maxRounds:  maxRounds,
			startRound: startRound,
			kernel:     kernel,
			root:       int64(opts.Root),
			progress:   cfg.Obs.ProgressOf(),
			keepSpans:  cfg.Obs.SpansOf() != nil,
			flight:     flight,
			ck:         ck,
		}
		if cfg.CheckpointEvery > 0 {
			if _, ok := algo.(Checkpointer); !ok {
				return nil, fmt.Errorf("algos: kernel %q does not implement Checkpointer; cannot checkpoint", kernel)
			}
		}
		if resume != nil {
			if err := nodes[i].restoreNode(resume.Nodes[i].Data); err != nil {
				return nil, err
			}
		}
	}

	// Per-round watchdog: if node 0's tick stops advancing for a whole
	// timeout window, poison the network so every blocked module unwinds —
	// the same recovery knob the BFS runner arms (core.ErrLevelTimeout).
	var watchdogErr chan error
	var watchdogStop chan struct{}
	if cfg.LevelTimeout > 0 {
		watchdogErr = make(chan error, 1)
		watchdogStop = make(chan struct{})
		if resume == nil {
			// A resumed run's restored rings already hold the arm event.
			flight.Control(obs.FlightWatchdogArm, -1, -1, "round timeout "+cfg.LevelTimeout.String())
		}
		go func() {
			t := time.NewTicker(cfg.LevelTimeout)
			defer t.Stop()
			last := st.roundTick.Load()
			for {
				select {
				case <-watchdogStop:
					return
				case <-t.C:
					cur := st.roundTick.Load()
					if cur != last {
						last = cur
						continue
					}
					flight.Control(obs.FlightWatchdogFire, -1, int(cur),
						"no round completed within "+cfg.LevelTimeout.String())
					watchdogErr <- fmt.Errorf("%w: no round completed within %s",
						core.ErrLevelTimeout, cfg.LevelTimeout)
					net.Abort()
					return
				}
			}
		}()
	}

	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = nodes[i].loop()
		}(i)
	}
	wg.Wait()
	if watchdogStop != nil {
		close(watchdogStop)
	}

	info := st.info
	// Consequence errors (errAborted from a peer's teardown, comm
	// inbox-closed errors wrapping comm.ErrAborted) are filtered so the
	// original failure surfaces as the abort cause.
	var cause error
	aborted := net.Aborted()
	for _, err := range errs {
		if err == nil {
			continue
		}
		aborted = true
		if cause == nil && !errors.Is(err, errAborted) && !errors.Is(err, comm.ErrAborted) {
			cause = err
		}
	}
	if aborted {
		if cause == nil && watchdogErr != nil {
			select {
			case cause = <-watchdogErr:
			default:
			}
		}
		if cause == nil {
			cause = errors.New("algos: run aborted without a reported cause")
		}
		ae := &core.AbortError{
			Root:            opts.Root,
			Cause:           cause,
			CompletedLevels: append([]perf.LevelStats(nil), info.Levels...),
			Injections:      inj.Log(),
		}
		// Post-mortem, mirroring the BFS runner: stamp the abort, drain the
		// black box, write the dump when a path was configured, and attach
		// the newest complete checkpoint next to it.
		flight.Control(obs.FlightAbort, -1, len(info.Levels), cause.Error())
		d := flight.Dump()
		d.Aborted = true
		d.Cause = cause.Error()
		ae.FlightDump = d
		if cfg.FlightDump != "" {
			if werr := obs.WriteFlightDumpFile(cfg.FlightDump, d); werr == nil {
				ae.FlightPath = cfg.FlightDump
			}
		}
		if ck != nil {
			ae.Checkpoint = ck.Latest()
			ae.CheckpointPath = ck.writeAbort(cfg.FlightDump, ae.Checkpoint)
		}
		return nil, ae
	}

	model := perf.NewModel(net.Topo, cfg.Engine)
	info.Time = model.TotalTime(info.Levels)
	info.Rounds = len(info.Levels)
	info.NetworkBytes = net.Counters.NetworkBytes()
	info.NetworkMessages = net.Counters.NetworkMessages()
	info.MaxConnections = net.MaxConnectionCount()
	if inj != nil {
		info.Injections = inj.Log()
	}

	if m := cfg.Obs.MetricsOf(); m != nil {
		m.Counter("algos.runs").Inc()
		m.Counter("algos.rounds").Add(int64(info.Rounds))
		m.Counter("algos." + kernel + ".runs").Inc()
		m.Gauge("algos.workers").Set(int64(workers))
		net.MetricsInto(m)
	}
	if t := cfg.Obs.TraceOf(); t != nil {
		final := net.Counters.Snapshot()
		term := final.Sub(st.lastSnap)
		rt := buildTrace(opts, info, model, final, term)
		rt.CodecTraffic = net.CodecTraffic()
		t.Record(rt)
	}
	if sr := cfg.Obs.SpansOf(); sr != nil {
		sr.EndRun(info.Time, buildSpans(cfg.Engine, model, info, nodes, workers), nil)
	}
	if pb := cfg.Obs.ProgressOf(); pb != nil {
		var edges int64
		for _, s := range info.Levels {
			edges += s.FrontierEdges
		}
		pb.Publish(obs.LiveEvent{
			Kind: obs.EventRunDone, Root: int64(opts.Root), Kernel: kernel,
			GTEPS: info.MTEPS(edges) / 1e3,
		})
	}
	return info, nil
}

// buildTrace converts the run's per-round statistics into a RunTrace whose
// books balance (RunTrace.Reconcile): round wall times sum to the run's
// total and round byte counts plus termination traffic sum to the fabric's
// grand total.
func buildTrace(opts RunOptions, info *RunInfo, model perf.Model, final, term fabric.Snapshot) obs.RunTrace {
	rt := obs.RunTrace{
		Root:         int64(opts.Root),
		TotalSeconds: info.Time,

		TerminationCollectiveBytes: term.CollectiveBytes,
		TerminationWireBytes:       term.NetworkBytes(),
		TotalNetworkBytes:          final.NetworkBytes(),
	}
	rt.Levels = make([]obs.LevelSpan, 0, len(info.Levels))
	for _, s := range info.Levels {
		rt.Levels = append(rt.Levels, obs.LevelSpan{
			Level:            s.Level,
			Direction:        s.Direction,
			FrontierVertices: s.FrontierVertices,
			EdgesRelaxed:     s.FrontierEdges,
			WallSeconds:      model.LevelTime(s),
			Rounds:           s.Rounds,

			LoopbackBytes:   s.Net.Bytes[fabric.Loopback],
			IntraSuperBytes: s.Net.Bytes[fabric.IntraSuper],
			InterSuperBytes: s.Net.Bytes[fabric.InterSuper],

			CollectiveBytes:     s.Net.CollectiveBytes,
			CollectiveWireBytes: s.Net.CollectiveWireBytes(),
			CollectiveOps:       s.Net.CollectiveOps,

			NetworkBytes:    s.Net.NetworkBytes(),
			NetworkMessages: s.Net.Messages[fabric.IntraSuper] + s.Net.Messages[fabric.InterSuper],

			MaxNodeProcessedBytes: s.MaxNodeProcessedBytes,
			MaxNodeSentBytes:      s.MaxNodeSentBytes,
		})
	}
	return rt
}

// buildSpans lays the run's per-node generator/handler work out on the
// modelled timeline, exactly as the BFS runner does for its module
// goroutines: each round's spans start at the round's start and last
// bytes/bandwidth at the configured engine's module bandwidth.
func buildSpans(engine perf.Engine, model perf.Model, info *RunInfo, nodes []*nodeRun, workers int) []obs.ModuleSpan {
	bw := engine.Bandwidth()
	attributed := 0
	if workers > 1 {
		attributed = workers // attribute pool width only when fanned out
	}
	var spans []obs.ModuleSpan
	levelStart := 0.0
	for li, s := range info.Levels {
		for _, n := range nodes {
			if li >= len(n.spanLog) {
				continue
			}
			rw := n.spanLog[li]
			if rw.gen > 0 {
				spans = append(spans, obs.ModuleSpan{
					Node: n.ctx.ID, Module: obs.ModuleForwardGenerator, Level: rw.round,
					Start: levelStart, Dur: float64(rw.gen) / bw, Bytes: rw.gen,
					Workers: attributed,
				})
			}
			if rw.handler > 0 {
				spans = append(spans, obs.ModuleSpan{
					Node: n.ctx.ID, Module: obs.ModuleForwardHandler, Level: rw.round,
					Start: levelStart, Dur: float64(rw.handler) / bw, Bytes: rw.handler,
					Workers: attributed,
				})
			}
		}
		levelStart += model.LevelTime(s)
	}
	return spans
}

// roundWork is one node's module byte counts for one completed round.
type roundWork struct {
	round        int
	gen, handler int64
}

// nodeRun drives one node's SPMD loop.
type nodeRun struct {
	ctx        *NodeCtx
	algo       RoundAlgo
	ep         comm.Endpoint
	net        *comm.Network
	st         *runState
	maxRounds  int
	startRound int

	kernel   string
	root     int64
	progress *obs.ProgressBroker

	keepSpans bool
	spanLog   []roundWork

	flight *obs.FlightRecorder
	ck     *driverCkpt
}

func (n *nodeRun) loop() error {
	info := n.st.info
	for round := n.startRound; ; round++ {
		if round >= n.maxRounds {
			n.net.Abort()
			return fmt.Errorf("algos: node %d exceeded %d rounds without converging", n.ctx.ID, n.maxRounds)
		}

		// Node 0 opens the round's accounting window before the activity
		// allreduce, so every byte of the round — termination check, data,
		// post-round statistics — lands in exactly one round's delta. (The
		// window is safe: no peer traffic can be recorded before node 0
		// joins the allreduce below.)
		var before fabric.Snapshot
		if n.ctx.ID == 0 {
			before = n.net.Counters.Snapshot()
			n.flight.Control(obs.FlightRoundOpen, -1, round, "")
		}

		active := n.net.AllreduceSum(n.algo.Active())
		if n.net.Aborted() {
			return errAborted
		}
		if active == 0 {
			return nil
		}

		if n.ctx.ID == 0 && n.progress != nil {
			n.progress.Publish(obs.LiveEvent{
				Kind: obs.EventLevel, Root: n.root, Kernel: n.kernel,
				Level: round, Direction: "round",
				FrontierVertices: active,
			})
		}

		sentMsgs0, sentBytes0 := n.net.NodeSent(n.ctx.ID)

		n.ep.StartLevel(round, comm.ChanForward)
		n.net.Barrier()
		if n.net.Aborted() {
			return errAborted
		}

		var sentPairs, recvPairs, batches int64
		send := func(dst int, p comm.Pair) error {
			sentPairs++
			return n.ep.Send(comm.ChanForward, dst, p)
		}
		if d := n.net.ChaosDelay(chaos.KindDelayGenerator, n.ctx.ID, round); d > 0 {
			time.Sleep(d)
		}
		if err := n.algo.Generate(round, send); err != nil {
			n.net.Abort()
			return err
		}
		if err := n.ep.CloseChannel(comm.ChanForward); err != nil {
			n.net.Abort()
			return err
		}
		if d := n.net.ChaosDelay(chaos.KindDelayHandler, n.ctx.ID, round); d > 0 {
			time.Sleep(d)
		}
	recvLoop:
		for {
			ev := n.ep.Recv()
			switch ev.Type {
			case comm.EvError:
				n.net.Abort()
				return ev.Err
			case comm.EvData:
				recvPairs += int64(len(ev.Batch.Pairs))
				batches++
				if err := n.algo.Handle(round, ev.Batch.Pairs); err != nil {
					n.net.Abort()
					return err
				}
			case comm.EvChannelClosed:
				break recvLoop
			}
		}
		if err := n.algo.EndRound(round); err != nil {
			n.net.Abort()
			return err
		}

		// Round statistics (same critical-path folding as the BFS engine).
		processed := (sentPairs + recvPairs) * comm.PairBytes
		sentMsgs1, sentBytes1 := n.net.NodeSent(n.ctx.ID)
		maxProcessed := n.net.AllreduceMax(processed)
		maxSent := n.net.AllreduceMax(sentBytes1 - sentBytes0)
		maxMsgs := n.net.AllreduceMax(sentMsgs1 - sentMsgs0)
		maxBatches := n.net.AllreduceMax(batches + 1)
		sumPairs := n.net.AllreduceSum(sentPairs)
		if n.net.Aborted() {
			return errAborted
		}
		if n.keepSpans {
			n.spanLog = append(n.spanLog, roundWork{
				round:   round,
				gen:     sentPairs * comm.PairBytes,
				handler: recvPairs * comm.PairBytes,
			})
		}
		if n.ctx.ID == 0 {
			after := n.net.Counters.Snapshot()
			rounds := 1
			if n.ep.Mode() == "relay" {
				rounds = 2
			}
			n.st.mu.Lock()
			info.Levels = append(info.Levels, perf.LevelStats{
				Level:                 round,
				Direction:             "round",
				FrontierVertices:      active,
				FrontierEdges:         sumPairs,
				MaxNodeProcessedBytes: maxProcessed,
				MaxNodeSentBytes:      maxSent,
				MaxNodeMessages:       maxMsgs,
				ModuleInvocations:     maxBatches,
				Net:                   after.Sub(before),
				Rounds:                rounds,
			})
			n.st.lastSnap = after
			n.st.mu.Unlock()
			n.st.roundTick.Add(1) // feed the watchdog: this round completed
			n.flight.Control(obs.FlightRoundClose, -1, round,
				fmt.Sprintf("active=%d pairs=%d", active, sumPairs))
		}

		// Round boundary: stage this node's checkpoint capture before
		// joining the next round's activity allreduce (see checkpoint.go
		// for why this window is race-free). A failed periodic file write
		// is fatal — silently continuing would lose the restart guarantee.
		if n.ck != nil && n.ck.every > 0 {
			if err := n.ck.stage(n, round); err != nil {
				n.net.Abort()
				return err
			}
		}
	}
}
