// Package algos implements the other irregular graph algorithms the paper
// names as direct beneficiaries of its techniques (Section 8: "the key
// operations of the distributed BFS can be viewed as shuffling dynamically
// generated data, which is also the major operation of many other graph
// algorithms, such as SSSP, WCC, PageRank, and K-core decomposition. All
// the three key techniques we used are readily applicable").
//
// Every algorithm here runs on exactly the same substrate as the BFS
// engine — the comm transports (direct or group-batched relay), the
// fat-tree traffic accounting and the perf timing model — via a shared
// round-synchronous SPMD driver: each round, every node generates
// messages from its active vertices, the transport batches and delivers
// them, handlers fold them into local state, and a sum-allreduce decides
// termination.
package algos

import (
	"errors"
	"fmt"
	"sync"

	"swbfs/internal/comm"
	"swbfs/internal/core"
	"swbfs/internal/fabric"
	"swbfs/internal/graph"
	"swbfs/internal/perf"
)

// DefaultMaxRounds guards against non-converging algorithm bugs.
const DefaultMaxRounds = 100000

var errAborted = errors.New("algos: run aborted by peer failure")

// NodeCtx is one node's view of the machine, handed to algorithm
// constructors.
type NodeCtx struct {
	ID   int
	Part graph.Partition
	Sub  *graph.LocalSubgraph
	Net  *comm.Network // collectives (all nodes must call symmetrically)
}

// Global converts a local vertex index to its global ID.
func (c *NodeCtx) Global(local int64) graph.Vertex { return c.Part.Global(c.ID, local) }

// Send is the message emitter handed to Generate.
type Send func(dst int, p comm.Pair) error

// RoundAlgo is one node's algorithm instance.
type RoundAlgo interface {
	// Active returns this node's pending work; the round runs only while
	// the machine-wide sum is positive.
	Active() int64
	// Generate emits this node's messages for the round and retires the
	// work it announced via Active.
	Generate(round int, send Send) error
	// Handle folds one delivered batch into local state.
	Handle(round int, pairs []comm.Pair) error
	// EndRound runs after all of the round's traffic has been handled
	// (symmetric across nodes; collectives are allowed here).
	EndRound(round int) error
}

// RunInfo is the machine-level outcome of a run.
type RunInfo struct {
	Rounds int
	Levels []perf.LevelStats
	// Time and the throughput helpers come from the perf model.
	Time float64
	// NetworkBytes and NetworkMessages total the wire traffic.
	NetworkBytes, NetworkMessages int64
	// MaxConnections is the peak per-node MPI connection count.
	MaxConnections int
}

// MTEPS returns millions of traversed edges per second for `edges`
// processed edge relaxations.
func (r *RunInfo) MTEPS(edges int64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(edges) / r.Time / 1e6
}

// Run executes one algorithm on the simulated machine described by cfg
// over graph g. makeAlgo constructs each node's instance. maxRounds <= 0
// selects DefaultMaxRounds.
func Run(cfg core.Config, g *graph.CSR, maxRounds int, makeAlgo func(ctx *NodeCtx) (RoundAlgo, error)) (*RunInfo, error) {
	if err := core.ValidateConfig(cfg); err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	part := graph.NewRoundRobin(g.N, cfg.Nodes)
	net, err := comm.NewNetwork(comm.Config{
		Nodes:           cfg.Nodes,
		SuperNodeSize:   cfg.SuperNodeSize,
		BatchBytes:      cfg.BatchBytes,
		MPIMemoryBudget: cfg.MPIMemoryBudget,
		Codec:           cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()

	shape := comm.GroupShape{}
	if cfg.Transport == core.TransportRelay {
		if cfg.GroupM > 0 {
			shape, err = comm.NewGroupShape(cfg.Nodes, cfg.GroupM)
			if err != nil {
				return nil, err
			}
		} else {
			super := cfg.SuperNodeSize
			if super <= 0 {
				super = 256
			}
			shape = comm.DefaultGroupShape(cfg.Nodes, super)
		}
	}

	nodes := make([]*nodeRun, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ctx := &NodeCtx{
			ID:   i,
			Part: part,
			Sub:  graph.ExtractLocal(g, part, i),
			Net:  net,
		}
		algo, err := makeAlgo(ctx)
		if err != nil {
			return nil, fmt.Errorf("algos: node %d: %w", i, err)
		}
		var ep comm.Endpoint
		if cfg.Transport == core.TransportRelay {
			ep, err = comm.NewRelayEndpoint(net, i, shape)
			if err != nil {
				return nil, err
			}
		} else {
			ep = comm.NewDirectEndpoint(net, i)
		}
		nodes[i] = &nodeRun{ctx: ctx, algo: algo, ep: ep, net: net, maxRounds: maxRounds}
	}

	info := &RunInfo{}
	var mu sync.Mutex
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = nodes[i].loop(info, &mu)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, errAborted) {
			return nil, err
		}
	}
	if net.Aborted() {
		return nil, fmt.Errorf("algos: run aborted without a reported cause")
	}

	model := perf.NewModel(net.Topo, cfg.Engine)
	info.Time = model.TotalTime(info.Levels)
	info.Rounds = len(info.Levels)
	info.NetworkBytes = net.Counters.NetworkBytes()
	info.NetworkMessages = net.Counters.NetworkMessages()
	info.MaxConnections = net.MaxConnectionCount()
	if m := cfg.Obs.MetricsOf(); m != nil {
		m.Counter("algos.runs").Inc()
		m.Counter("algos.rounds").Add(int64(info.Rounds))
		net.MetricsInto(m)
	}
	return info, nil
}

// nodeRun drives one node's SPMD loop.
type nodeRun struct {
	ctx       *NodeCtx
	algo      RoundAlgo
	ep        comm.Endpoint
	net       *comm.Network
	maxRounds int
}

func (n *nodeRun) loop(info *RunInfo, mu *sync.Mutex) error {
	for round := 0; ; round++ {
		if round >= n.maxRounds {
			n.net.Abort()
			return fmt.Errorf("algos: node %d exceeded %d rounds without converging", n.ctx.ID, n.maxRounds)
		}
		active := n.net.AllreduceSum(n.algo.Active())
		if n.net.Aborted() {
			return errAborted
		}
		if active == 0 {
			return nil
		}

		var before fabric.Snapshot
		if n.ctx.ID == 0 {
			before = n.net.Counters.Snapshot()
		}
		sentMsgs0, sentBytes0 := n.net.NodeSent(n.ctx.ID)

		n.ep.StartLevel(round, comm.ChanForward)
		n.net.Barrier()
		if n.net.Aborted() {
			return errAborted
		}

		var sentPairs, recvPairs, batches int64
		send := func(dst int, p comm.Pair) error {
			sentPairs++
			return n.ep.Send(comm.ChanForward, dst, p)
		}
		if err := n.algo.Generate(round, send); err != nil {
			n.net.Abort()
			return err
		}
		if err := n.ep.CloseChannel(comm.ChanForward); err != nil {
			n.net.Abort()
			return err
		}
	recvLoop:
		for {
			ev := n.ep.Recv()
			switch ev.Type {
			case comm.EvError:
				n.net.Abort()
				return ev.Err
			case comm.EvData:
				recvPairs += int64(len(ev.Batch.Pairs))
				batches++
				if err := n.algo.Handle(round, ev.Batch.Pairs); err != nil {
					n.net.Abort()
					return err
				}
			case comm.EvChannelClosed:
				break recvLoop
			}
		}
		if err := n.algo.EndRound(round); err != nil {
			n.net.Abort()
			return err
		}

		// Round statistics (same critical-path folding as the BFS engine).
		processed := (sentPairs + recvPairs) * comm.PairBytes
		sentMsgs1, sentBytes1 := n.net.NodeSent(n.ctx.ID)
		maxProcessed := n.net.AllreduceMax(processed)
		maxSent := n.net.AllreduceMax(sentBytes1 - sentBytes0)
		maxMsgs := n.net.AllreduceMax(sentMsgs1 - sentMsgs0)
		maxBatches := n.net.AllreduceMax(batches + 1)
		if n.net.Aborted() {
			return errAborted
		}
		if n.ctx.ID == 0 {
			after := n.net.Counters.Snapshot()
			rounds := 1
			if n.ep.Mode() == "relay" {
				rounds = 2
			}
			mu.Lock()
			info.Levels = append(info.Levels, perf.LevelStats{
				Level:                 round,
				Direction:             "round",
				MaxNodeProcessedBytes: maxProcessed,
				MaxNodeSentBytes:      maxSent,
				MaxNodeMessages:       maxMsgs,
				ModuleInvocations:     maxBatches,
				Net:                   after.Sub(before),
				Rounds:                rounds,
			})
			mu.Unlock()
		}
	}
}
