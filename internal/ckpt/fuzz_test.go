package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointRoundTrip feeds arbitrary bytes through the reader and
// demands that everything the reader accepts re-encodes canonically: the
// canonical form must parse back, and must be an encoding fixpoint
// (encode ∘ read ∘ encode = encode). The committed corpus under
// testdata/fuzz seeds the fuzzer with valid checkpoints (random bytes
// rarely carry a self-consistent fingerprint); `make fuzz` runs this
// alongside the envelope and bitmap fuzzers.
func FuzzCheckpointRoundTrip(f *testing.F) {
	if seed, err := Encode(sampleCheckpoint()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte("not a checkpoint"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to guarantee
		}
		canon, err := Encode(c)
		if err != nil {
			t.Fatalf("accepted checkpoint does not encode: %v", err)
		}
		back, err := Read(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical encoding does not parse: %v\n%s", err, canon)
		}
		again, err := Encode(back)
		if err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(canon, again) {
			t.Fatalf("canonical form is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", canon, again)
		}
	})
}
