package ckpt

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"swbfs/internal/chaos"
	"swbfs/internal/perf"
)

// sampleCheckpoint builds a representative checkpoint exercising every
// top-level section: machine config, level stats, counters, injections,
// flight state absent (covered by the integration tests), two node
// payloads. Built fresh on every call so determinism tests compare
// independent constructions.
func sampleCheckpoint() *Checkpoint {
	mc := MachineConfig{
		Nodes:              2,
		SuperNodeSize:      1,
		Transport:          "direct",
		Engine:             "MPE",
		DirectionOptimized: true,
		AlphaBits:          math.Float64bits(14.0),
		BetaBits:           math.Float64bits(24.0),
		HubPrefetch:        true,
		SmallMessageMPE:    true,
		Codec:              "raw",
		Partition:          "round-robin",
		GraphN:             8,
		GraphEdges:         16,
	}
	return &Checkpoint{
		Schema:      SchemaVersion,
		Kernel:      "bfs",
		Root:        3,
		Config:      mc,
		Fingerprint: mc.Fingerprint(),
		Level:       2,
		Machine: MachineState{
			Levels: []perf.LevelStats{
				{Level: 0, Direction: "topdown", FrontierVertices: 1, FrontierEdges: 4, Rounds: 1},
				{Level: 1, Direction: "bottomup", FrontierVertices: 4, FrontierEdges: 9, Rounds: 2},
			},
			Policy:     1,
			HubVisited: []uint64{0x2a},
			Injections: []chaos.Fault{{Kind: chaos.KindDrop, Node: 1, Level: 1, Op: 2}},
		},
		Nodes: []NodeState{
			{ID: 0, Data: json.RawMessage(`{"parent":[3,-1,0,3],"visited":[9]}`)},
			{ID: 1, Data: json.RawMessage(`{"parent":[-1,3,-1,0],"visited":[10]}`)},
		},
	}
}

// compactNodes normalizes the node payloads' whitespace: the canonical
// encoder re-indents embedded raw JSON, so after a round trip the bytes
// of NodeState.Data differ in spacing (never in content).
func compactNodes(c *Checkpoint) {
	for i, ns := range c.Nodes {
		var buf bytes.Buffer
		if err := json.Compact(&buf, ns.Data); err == nil {
			c.Nodes[i].Data = json.RawMessage(buf.String())
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of identical checkpoints differ")
	}
	// Field order is part of the canonical form: schema leads, so even a
	// human (or a forward-compatible reader) sees the version first.
	if !strings.HasPrefix(string(a), "{\n  \"schema\": 1,\n  \"kernel\": \"bfs\"") {
		t.Fatalf("canonical encoding does not lead with schema/kernel:\n%s", a[:min(len(a), 120)])
	}
}

// TestGoldenBytes pins the canonical byte format against the committed
// golden file: any codec change that moves a byte is a schema change and
// must bump SchemaVersion (and regenerate testdata/golden.ckpt.json).
func TestGoldenBytes(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical encoding drifted from testdata/golden.ckpt.json:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleCheckpoint()
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	compactNodes(back)
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the checkpoint:\n  in:  %+v\n  out: %+v", orig, back)
	}

	// The canonical form is a fixpoint: encoding the decoded checkpoint
	// reproduces the bytes exactly.
	again, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt.json")
	orig := sampleCheckpoint()
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	compactNodes(back)
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("file round trip changed the checkpoint")
	}
}

func TestSchemaReject(t *testing.T) {
	c := sampleCheckpoint()
	c.Schema = SchemaVersion + 1
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("unknown schema version accepted")
	} else if !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema rejection does not name the schema: %v", err)
	}
}

func TestFingerprintReject(t *testing.T) {
	c := sampleCheckpoint()
	c.Config.Nodes = 4 // config no longer matches the recorded fingerprint
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint rejection does not name the fingerprint: %v", err)
	}
}

func TestReadGarbage(t *testing.T) {
	for _, s := range []string{"", "not json", "[]", `{"schema":1`} {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Fatalf("garbage input %q accepted", s)
		}
	}
}

// TestFloatBits: the bit-pattern carriers round-trip every IEEE-754
// value exactly — including the ones plain JSON floats mangle or reject
// (NaN, infinities, negative zero, subnormals).
func TestFloatBits(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, -14.25,
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
	bits := Float64sToBits(vals)
	back := BitsToFloat64s(bits)
	if len(back) != len(vals) {
		t.Fatalf("%d values in, %d out", len(vals), len(back))
	}
	for i := range vals {
		if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %x round-tripped to %x",
				i, math.Float64bits(vals[i]), math.Float64bits(back[i]))
		}
	}
	if Float64sToBits(nil) != nil || BitsToFloat64s(nil) != nil {
		t.Fatal("nil does not map to nil")
	}
}

func TestRenderMentionsIdentity(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"kernel       bfs", "2 completed", "drop@1:l1:data/forward:2", "node 0", "level 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}
