// Package ckpt defines the level-boundary checkpoint format of the
// simulated machine and its byte-deterministic JSON codec.
//
// A checkpoint is taken at a level/round barrier — the natural global
// consistency point of a level-synchronous engine: no batch is in flight,
// every counter holds exactly the completed levels' traffic, and each
// node's algorithm state is a pure function of the run so far. The file
// holds everything a Resume path needs to reconstruct the ensemble and
// continue such that the completed run's Result/RunInfo is bitwise
// identical to an uninterrupted run: per-node kernel state (serialized
// through the engines' Checkpointer hooks), the machine-wide level
// statistics and traffic counters, the direction-policy state, the chaos
// injection log, and the flight-recorder rings.
//
// Determinism contract: encoding is canonical (fixed field order, indented
// json.Encoder, float64 values carried as IEEE-754 bit patterns in uint64
// fields), so two runs of the same seed and configuration write
// byte-identical checkpoint files at every boundary, at every Workers
// width, on both transports. See docs/CHAOS.md ("Checkpoint & resume").
package ckpt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"swbfs/internal/chaos"
	"swbfs/internal/comm"
	"swbfs/internal/fabric"
	"swbfs/internal/obs"
	"swbfs/internal/perf"
)

// SchemaVersion stamps every checkpoint; readers reject versions they do
// not understand.
const SchemaVersion = 1

// MachineConfig is the run-identity part of a core.Config, embedded in the
// checkpoint so a resume can reconstruct the machine without the caller
// re-supplying every knob. Host-only knobs (Workers, timeouts, observers,
// the chaos plan) are deliberately absent: they do not affect modelled
// output, so a run may be resumed at a different worker width — the
// bit-identity guarantee still holds.
type MachineConfig struct {
	Nodes         int    `json:"nodes"`
	SuperNodeSize int    `json:"super_node_size"`
	Transport     string `json:"transport"`
	Engine        string `json:"engine"`
	GroupM        int    `json:"group_m,omitempty"`

	DirectionOptimized bool `json:"direction_optimized"`
	// AlphaBits and BetaBits carry the policy thresholds as IEEE-754 bit
	// patterns so the file stays byte-deterministic and round-trips exactly.
	AlphaBits uint64 `json:"alpha_bits"`
	BetaBits  uint64 `json:"beta_bits"`

	HubPrefetch  bool `json:"hub_prefetch"`
	HubsTopDown  int  `json:"hubs_top_down,omitempty"`
	HubsBottomUp int  `json:"hubs_bottom_up,omitempty"`

	SmallMessageMPE bool   `json:"small_message_mpe"`
	BatchBytes      int64  `json:"batch_bytes,omitempty"`
	MPIMemoryBudget int64  `json:"mpi_memory_budget,omitempty"`
	Codec           string `json:"codec"`
	// CodecBackward is the backward-channel codec override ("" = none).
	// Absent from files written before per-channel codecs existed, so
	// those parse — and fingerprint — exactly as they always did.
	CodecBackward string `json:"codec_backward,omitempty"`
	Partition     string `json:"partition"`

	// GraphN and GraphEdges identify the graph (the file does not embed the
	// graph itself; the resume caller must rebuild the same one).
	GraphN     int64 `json:"graph_n"`
	GraphEdges int64 `json:"graph_edges"`
}

// Fingerprint renders the configuration identity as a canonical string.
// Resume refuses a checkpoint whose fingerprint does not match the machine
// it is being loaded into.
func (mc MachineConfig) Fingerprint() string {
	fp := fmt.Sprintf("nodes=%d super=%d transport=%s engine=%s groupM=%d dir=%t alpha=%x beta=%x hubs=%t/%d/%d smallmpe=%t batch=%d budget=%d codec=%s part=%s graph=%d/%d",
		mc.Nodes, mc.SuperNodeSize, mc.Transport, mc.Engine, mc.GroupM,
		mc.DirectionOptimized, mc.AlphaBits, mc.BetaBits,
		mc.HubPrefetch, mc.HubsTopDown, mc.HubsBottomUp,
		mc.SmallMessageMPE, mc.BatchBytes, mc.MPIMemoryBudget,
		mc.Codec, mc.Partition, mc.GraphN, mc.GraphEdges)
	if mc.CodecBackward != "" {
		// Appended only when set: every fingerprint ever written without a
		// backward codec stays byte-identical.
		fp += " codecB=" + mc.CodecBackward
	}
	return fp
}

// MachineState is the machine-wide (node-agnostic) state at the boundary.
type MachineState struct {
	// Levels are the completed levels' statistics (the modelled-time input).
	Levels []perf.LevelStats `json:"levels"`
	// LastSnap is the traffic snapshot after the last completed level's
	// stats exchange — the baseline the next level's delta is measured from.
	LastSnap fabric.Snapshot `json:"last_snap"`
	// Net is the network's cumulative counter state.
	Net comm.NetState `json:"net"`
	// Policy is the direction policy's current state (core.Direction).
	Policy int `json:"policy"`
	// HubVisited is the machine-wide hub-visited bitmap (BFS only).
	HubVisited []uint64 `json:"hub_visited,omitempty"`
	// Injections is the chaos injection log at the boundary — the faults
	// that already fired. A resumed run seeds its injector's log with these
	// so LastInjections matches an uninterrupted run.
	Injections []chaos.Fault `json:"injections,omitempty"`
	// Flight is the flight recorder's ring state, so a post-resume dump
	// still covers the pre-checkpoint events.
	Flight *obs.FlightState `json:"flight,omitempty"`
}

// NodeState is one simulated node's serialized state. Data is the engine's
// per-node payload: the BFS runner's bfsNodeData or the algos driver's
// wrapper around a kernel Checkpointer payload.
type NodeState struct {
	ID   int             `json:"id"`
	Data json.RawMessage `json:"data"`
}

// Checkpoint is the full serialized machine at one level boundary.
type Checkpoint struct {
	Schema int    `json:"schema"`
	Kernel string `json:"kernel"`
	Root   int64  `json:"root"`
	// Config identifies the machine; Fingerprint is Config.Fingerprint(),
	// duplicated so mismatches show up even to readers that do not
	// recompute it.
	Config      MachineConfig `json:"config"`
	Fingerprint string        `json:"fingerprint"`
	// Level is the number of completed levels/rounds — the level the
	// resumed run starts at.
	Level   int          `json:"level"`
	Machine MachineState `json:"machine"`
	Nodes   []NodeState  `json:"nodes"`
}

// Float64sToBits converts float values to their IEEE-754 bit patterns for
// serialization: uint64 round-trips exactly through JSON, float64 does not.
func Float64sToBits(vals []float64) []uint64 {
	if vals == nil {
		return nil
	}
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// BitsToFloat64s is the inverse of Float64sToBits.
func BitsToFloat64s(bits []uint64) []float64 {
	if bits == nil {
		return nil
	}
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// Encode serializes the checkpoint into its canonical byte form.
func Encode(c *Checkpoint) ([]byte, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// Write serializes a checkpoint as indented JSON — the byte-stable format
// the determinism tests compare and /debug/checkpoint serves.
func Write(w io.Writer, c *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("ckpt: encoding checkpoint: %w", err)
	}
	return nil
}

// WriteFile writes a checkpoint to path (the -checkpoint flags and the
// abort post-mortem path).
func WriteFile(path string, c *Checkpoint) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ckpt: writing checkpoint: %w", err)
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: writing checkpoint: %w", err)
	}
	return nil
}

// Read parses a checkpoint and validates its schema version and
// fingerprint consistency.
func Read(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("ckpt: decoding checkpoint: %w", err)
	}
	if c.Schema != SchemaVersion {
		return nil, fmt.Errorf("ckpt: checkpoint schema %d, this build reads %d", c.Schema, SchemaVersion)
	}
	if got := c.Config.Fingerprint(); c.Fingerprint != got {
		return nil, fmt.Errorf("ckpt: fingerprint mismatch: file says %q, config computes %q", c.Fingerprint, got)
	}
	return &c, nil
}

// ReadFile reads a checkpoint from path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Render writes a human-readable summary of a checkpoint — the
// `flightview -checkpoint` inspection mode.
func Render(w io.Writer, c *Checkpoint) error {
	fmt.Fprintf(w, "checkpoint schema %d\n", c.Schema)
	fmt.Fprintf(w, "  kernel       %s  root %d\n", c.Kernel, c.Root)
	fmt.Fprintf(w, "  machine      %d nodes, %s transport, %s engine, graph %d vertices / %d edges\n",
		c.Config.Nodes, c.Config.Transport, c.Config.Engine, c.Config.GraphN, c.Config.GraphEdges)
	fmt.Fprintf(w, "  boundary     %d completed level(s)/round(s)\n", c.Level)
	fmt.Fprintf(w, "  fingerprint  %s\n", c.Fingerprint)
	fmt.Fprintf(w, "  traffic      %s\n", c.Machine.Net.Counters.String())
	if len(c.Machine.Injections) > 0 {
		specs := make([]string, len(c.Machine.Injections))
		for i, f := range c.Machine.Injections {
			specs[i] = f.String()
		}
		fmt.Fprintf(w, "  injections   %s\n", strings.Join(specs, ", "))
	}
	if fs := c.Machine.Flight; fs != nil {
		events := 0
		for _, rg := range fs.Rings {
			events += len(rg.Events)
		}
		fmt.Fprintf(w, "  flight       %d run(s), %d ring(s), %d buffered event(s)\n",
			len(fs.Runs), len(fs.Rings), events)
	}
	for _, ns := range c.Nodes {
		fmt.Fprintf(w, "  node %-4d    %d B state\n", ns.ID, len(ns.Data))
	}
	for _, ls := range c.Machine.Levels {
		fmt.Fprintf(w, "  level %-3d    dir=%s frontier=%d edges=%d rounds=%d\n",
			ls.Level, ls.Direction, ls.FrontierVertices, ls.FrontierEdges, ls.Rounds)
	}
	return nil
}
