GO ?= go

.PHONY: build test check fmt vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: build, vet, formatting, full tests, and
# the race-detector pass over the concurrency-heavy packages.
check: build vet fmt test race

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .
