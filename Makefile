GO ?= go

.PHONY: build test check fmt vet race bench bench-snapshot bench-diff chaos fuzz docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: build, vet, formatting, full tests, the
# race-detector pass over the concurrency-heavy packages, and the
# docs-vs-code lint.
check: build vet fmt test race docs-check

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The second pass forces multi-core scheduling so the Workers>1 parity
# tests race the sharded generators and handler fan-out for real — for the
# BFS engine, the kernel fan-outs, and the chaos x width parity sweep.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/algos/...
	GOMAXPROCS=4 $(GO) test -race -run Workers ./internal/core/ ./internal/algos/ ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem .

# docs-check fails when docs and code drift: broken intra-repo markdown
# links, or a cmd/ flag no markdown file mentions.
docs-check:
	$(GO) run ./cmd/docscheck .

# chaos sweeps the fault-injection harness (20 seeded random plans plus
# the targeted fault scenarios) under the race detector. See docs/CHAOS.md.
chaos:
	$(GO) test -race -run TestChaos -v ./internal/chaos/

# fuzz gives each fuzz target a short budget on top of its committed seed
# corpus — a smoke pass, not a soak; raise FUZZTIME for a real session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzEnvelopeRoundTrip -fuzztime=$(FUZZTIME) ./internal/comm/
	$(GO) test -run='^$$' -fuzz=FuzzBitmapWordScan -fuzztime=$(FUZZTIME) ./internal/graph/

# bench-snapshot runs the standard sweep and writes the next BENCH_<n>.json
# in the repo root; bench-diff compares the newest two snapshots and fails
# on a GTEPS regression beyond the default threshold. Workflow: snapshot on
# a known-good commit, change code, snapshot again, diff.
bench-snapshot:
	$(GO) run ./cmd/benchtrend

bench-diff:
	$(GO) run ./cmd/benchtrend -compare-latest
