GO ?= go

.PHONY: build test check fmt vet race bench bench-snapshot bench-diff chaos fuzz docs-check resume-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: build, vet, formatting, full tests, the
# race-detector pass over the concurrency-heavy packages, the
# checkpoint/resume smoke, and the docs-vs-code lint.
check: build vet fmt test race resume-smoke docs-check

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The second pass forces multi-core scheduling so the Workers>1 parity
# tests race the sharded generators and handler fan-out for real — for the
# BFS engine, the kernel fan-outs, the chaos x width parity sweep, and the
# kill-everywhere checkpoint/resume sweep.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/algos/...
	GOMAXPROCS=4 $(GO) test -race -run 'Workers|Resume|Checkpoint' ./internal/core/ ./internal/algos/ ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem .

# docs-check fails when docs and code drift: broken intra-repo markdown
# links, or a cmd/ flag no markdown file mentions.
docs-check:
	$(GO) run ./cmd/docscheck .

# chaos sweeps the fault-injection harness (20 seeded random plans plus
# the targeted fault scenarios) under the race detector. See docs/CHAOS.md.
chaos:
	$(GO) test -race -run TestChaos -v ./internal/chaos/

# fuzz gives each fuzz target a short budget on top of its committed seed
# corpus — a smoke pass, not a soak; raise FUZZTIME for a real session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzEnvelopeRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/comm/
	$(GO) test -run='^$$' -fuzz='^FuzzCodecRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/comm/
	$(GO) test -run='^$$' -fuzz=FuzzBitmapWordScan -fuzztime=$(FUZZTIME) ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointRoundTrip -fuzztime=$(FUZZTIME) ./internal/ckpt/

# resume-smoke drives the full CLI walkthrough of docs/CHAOS.md: kill a
# graph500 run mid-level, resume it from the abort checkpoint, and fail
# unless the resumed result validates.
resume-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/graph500 -scale 10 -nodes 8 -roots 1 -seed 42 \
		-checkpoint-every 1 -checkpoint "$$dir/smoke.ckpt.json" \
		-chaos-plan 'kill@3:l2:data/forward:0' >/dev/null 2>&1; \
	test -s "$$dir/smoke.ckpt.json" || { echo "resume-smoke: no checkpoint written"; exit 1; } && \
	$(GO) run ./cmd/graph500 -scale 10 -nodes 8 -seed 42 -resume "$$dir/smoke.ckpt.json" \
		| grep -q 'validation: *ok' && echo "resume-smoke: ok"

# bench-snapshot runs the standard sweep and writes the next BENCH_<n>.json
# in the repo root; bench-diff compares the newest two snapshots and fails
# on a GTEPS regression beyond the default threshold. Workflow: snapshot on
# a known-good commit, change code, snapshot again, diff.
bench-snapshot:
	$(GO) run ./cmd/benchtrend

bench-diff:
	$(GO) run ./cmd/benchtrend -compare-latest
