GO ?= go

.PHONY: build test check fmt vet race bench bench-snapshot bench-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: build, vet, formatting, full tests, and
# the race-detector pass over the concurrency-heavy packages.
check: build vet fmt test race

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The second pass forces multi-core scheduling so the Workers>1 parity
# tests race the sharded generators and handler fan-out for real.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...
	GOMAXPROCS=4 $(GO) test -race -run Workers ./internal/core/

bench:
	$(GO) test -bench=. -benchmem .

# bench-snapshot runs the standard sweep and writes the next BENCH_<n>.json
# in the repo root; bench-diff compares the newest two snapshots and fails
# on a GTEPS regression beyond the default threshold. Workflow: snapshot on
# a known-good commit, change code, snapshot again, diff.
bench-snapshot:
	$(GO) run ./cmd/benchtrend

bench-diff:
	$(GO) run ./cmd/benchtrend -compare-latest
