package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRepo lays out a minimal repository with one good link, one broken
// link, one documented flag and one undocumented flag.
func fakeRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("README.md", "See [the guide](docs/GUIDE.md) and [gone](docs/MISSING.md).\nUse `-scale N` to size the graph.\n")
	write("docs/GUIDE.md", "Back to [README](../README.md) and [section](#section) and [site](https://example.com/x.md).\n")
	write("cmd/tool/main.go", `package main

import "flag"

var (
	scale = flag.Int("scale", 16, "documented")
	ghost = flag.Bool("ghost", false, "undocumented")
)

func main() { flag.Parse(); _ = scale; _ = ghost }
`)
	write("cmd/tool/main_test.go", `package main

import "flag"

var testOnly = flag.String("test-only", "", "test flags are exempt")
`)
	return root
}

func TestCollect(t *testing.T) {
	root := fakeRepo(t)
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(md) != 2 {
		t.Fatalf("markdown files = %v, want 2", md)
	}
	if len(goSrc) != 1 || !strings.HasSuffix(goSrc[0], "main.go") {
		t.Fatalf("cmd sources = %v, want just cmd/tool/main.go", goSrc)
	}
}

func TestCheckLinks(t *testing.T) {
	root := fakeRepo(t)
	md, _, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	problems := checkLinks(root, md)
	if len(problems) != 1 || !strings.Contains(problems[0], "docs/MISSING.md") {
		t.Fatalf("link problems = %v, want one about docs/MISSING.md", problems)
	}
}

func TestCheckFlags(t *testing.T) {
	root := fakeRepo(t)
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	problems := checkFlags(root, md, goSrc)
	if len(problems) != 1 || !strings.Contains(problems[0], "-ghost") {
		t.Fatalf("flag problems = %v, want one about -ghost", problems)
	}
}

// TestRepoIsClean runs both checks over the real repository — the same
// gate `make docs-check` applies.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	if problems := append(checkLinks(root, md), checkFlags(root, md, goSrc)...); len(problems) > 0 {
		t.Fatalf("docs drift:\n%s", strings.Join(problems, "\n"))
	}
}
