package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRepo lays out a minimal repository with one good link, one broken
// link, one documented flag and one undocumented flag.
func fakeRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("README.md", "See [the guide](docs/GUIDE.md) and [gone](docs/MISSING.md).\nUse `-scale N` to size the graph.\n")
	write("docs/GUIDE.md", "# Guide\n\n## Section\n\nBack to [README](../README.md) and [section](#section) and [site](https://example.com/x.md).\n")
	write("cmd/tool/main.go", `package main

import "flag"

var (
	scale = flag.Int("scale", 16, "documented")
	ghost = flag.Bool("ghost", false, "undocumented")
)

func main() { flag.Parse(); _ = scale; _ = ghost }
`)
	write("cmd/tool/main_test.go", `package main

import "flag"

var testOnly = flag.String("test-only", "", "test flags are exempt")
`)
	return root
}

func TestCollect(t *testing.T) {
	root := fakeRepo(t)
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(md) != 2 {
		t.Fatalf("markdown files = %v, want 2", md)
	}
	if len(goSrc) != 1 || !strings.HasSuffix(goSrc[0], "main.go") {
		t.Fatalf("cmd sources = %v, want just cmd/tool/main.go", goSrc)
	}
}

func TestCheckLinks(t *testing.T) {
	root := fakeRepo(t)
	md, _, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	problems := checkLinks(root, md)
	if len(problems) != 1 || !strings.Contains(problems[0], "docs/MISSING.md") {
		t.Fatalf("link problems = %v, want one about docs/MISSING.md", problems)
	}
}

func TestCheckFlags(t *testing.T) {
	root := fakeRepo(t)
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	problems := checkFlags(root, md, goSrc)
	if len(problems) != 1 || !strings.Contains(problems[0], "-ghost") {
		t.Fatalf("flag problems = %v, want one about -ghost", problems)
	}
}

func TestSlugify(t *testing.T) {
	for _, tc := range []struct{ heading, want string }{
		{"Flight recorder & post-mortems", "flight-recorder--post-mortems"},
		{"Hello, World!", "hello-world"},
		{"snake_case and-dash", "snake_case-and-dash"},
		{"  padded  ", "padded"},
		{"`-flags` in code", "-flags-in-code"},
		{"Mixed CASE 123", "mixed-case-123"},
	} {
		if got := slugify(tc.heading); got != tc.want {
			t.Errorf("slugify(%q) = %q, want %q", tc.heading, got, tc.want)
		}
	}
}

func TestHeadingAnchors(t *testing.T) {
	doc := "# Top\n\n## Dup\n\n## Dup\n\n```\n# not a heading\n```\n\n## Closing ##\n"
	set := headingAnchors(doc)
	for _, want := range []string{"top", "dup", "dup-1", "closing"} {
		if !set[want] {
			t.Errorf("anchor %q missing from %v", want, set)
		}
	}
	if set["not-a-heading"] {
		t.Errorf("fenced pseudo-heading leaked into anchors: %v", set)
	}
}

// TestCheckAnchors lays out a repo where the only problems are fragment
// mismatches: a cross-file #fragment naming no heading, a bare same-file
// #fragment naming no heading, and a fragment pointing at a heading that
// only exists inside a code fence.
func TestCheckAnchors(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.md", "# Top\n\n"+
		"## Flight recorder & post-mortems\n\n"+
		"```\n# Fenced\n```\n\n"+
		"[ok cross](b.md#real)\n"+
		"[bad cross](b.md#nope)\n"+
		"[ok self](#flight-recorder--post-mortems)\n"+
		"[bad self](#missing)\n"+
		"[fenced](#fenced)\n")
	write("b.md", "## Real\n\nSee [top](a.md#top).\n")
	md, _, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	problems := checkLinks(root, md)
	if len(problems) != 3 {
		t.Fatalf("anchor problems = %v, want 3", problems)
	}
	for i, frag := range []string{"#nope", "#missing", "#fenced"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("problem %d about %s missing from %v", i, frag, problems)
		}
	}
}

// TestRepoIsClean runs both checks over the real repository — the same
// gate `make docs-check` applies.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	md, goSrc, err := collect(root)
	if err != nil {
		t.Fatal(err)
	}
	if problems := append(checkLinks(root, md), checkFlags(root, md, goSrc)...); len(problems) > 0 {
		t.Fatalf("docs drift:\n%s", strings.Join(problems, "\n"))
	}
}
