// Command docscheck is the documentation lint `make docs-check` runs: it
// fails the build when the docs and the code drift apart.
//
// Two checks, both purely static:
//
//  1. Every intra-repository markdown link resolves. All `[text](target)`
//     links in every tracked .md file are checked against the filesystem
//     (external http(s)/mailto links are skipped). A `#fragment` — on a
//     `file.md#fragment` link or a bare same-file `#fragment` — must match
//     an actual heading anchor of the target document, using GitHub's
//     slug rules (lowercased, punctuation dropped, spaces to hyphens,
//     duplicates suffixed -1, -2, ...).
//  2. Every CLI flag is documented. Each `flag.Xxx("name", ...)`
//     registration under cmd/ must be mentioned as `-name` in at least
//     one markdown file — a flag nobody can discover is a flag that
//     doesn't exist.
//
// Usage: docscheck [repo-root]   (default ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

var (
	// [text](target) — non-greedy, one line; images share the syntax.
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// ATX headings: 1-6 hashes, a space, the heading text.
	mdHeading = regexp.MustCompile(`^(#{1,6})[ \t]+(.+)$`)
	// String/Bool/Int/... flag registrations, including the *Var forms.
	flagDecl = regexp.MustCompile(`\bflag\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)(?:Var)?\(\s*(?:&\w+(?:\.\w+)*\s*,\s*)?"([^"]+)"`)
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	mdFiles, goFiles, err := collect(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}

	var problems []string
	problems = append(problems, checkLinks(root, mdFiles)...)
	problems = append(problems, checkFlags(root, mdFiles, goFiles)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown files, %d cmd sources: OK\n", len(mdFiles), len(goFiles))
}

// collect walks the repo for markdown files (everywhere) and Go sources
// under cmd/, skipping VCS and test fixture directories.
func collect(root string) (md, goSrc []string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(name, ".md"):
			md = append(md, rel)
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			strings.HasPrefix(rel, "cmd"+string(filepath.Separator)):
			goSrc = append(goSrc, rel)
		}
		return nil
	})
	sort.Strings(md)
	sort.Strings(goSrc)
	return md, goSrc, err
}

// checkLinks verifies every relative markdown link target exists and every
// #fragment names a real heading anchor of its target document.
func checkLinks(root string, mdFiles []string) []string {
	anchors := map[string]map[string]bool{} // cleaned repo-rel .md path -> anchor set
	anchorsOf := func(rel string) map[string]bool {
		rel = filepath.Clean(rel)
		if set, ok := anchors[rel]; ok {
			return set
		}
		var set map[string]bool
		if data, err := os.ReadFile(filepath.Join(root, rel)); err == nil {
			set = headingAnchors(string(data))
		}
		anchors[rel] = set
		return set
	}

	var problems []string
	for _, rel := range mdFiles {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", rel, err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target, frag := m[1], ""
			if skipLink(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target, frag = target[:i], target[i+1:]
			}
			targetRel := rel // bare #fragment: the document itself
			if target != "" {
				resolved := filepath.Join(root, filepath.Dir(rel), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s: broken link %q", rel, m[1]))
					continue
				}
				targetRel = filepath.Join(filepath.Dir(rel), filepath.FromSlash(target))
			}
			if frag != "" && strings.HasSuffix(targetRel, ".md") {
				if set := anchorsOf(targetRel); set != nil && !set[frag] {
					problems = append(problems, fmt.Sprintf("%s: link %q: no heading with anchor #%s in %s",
						rel, m[1], frag, filepath.ToSlash(targetRel)))
				}
			}
		}
	}
	return problems
}

func skipLink(target string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, prefix) {
			return true
		}
	}
	return false
}

// headingAnchors collects the GitHub anchor slugs of a markdown document's
// ATX headings, skipping fenced code blocks. A repeated slug gets the -1,
// -2, ... suffixes GitHub appends.
func headingAnchors(doc string) map[string]bool {
	set := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := mdHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// Closing-sequence form "## Title ##": the trailing hashes are not
		// part of the heading text.
		text := strings.TrimRight(m[2], "#")
		slug := slugify(text)
		n := counts[slug]
		counts[slug]++
		if n > 0 {
			slug = fmt.Sprintf("%s-%d", slug, n)
		}
		set[slug] = true
	}
	return set
}

// slugify applies GitHub's heading-anchor rules: lowercase, keep letters,
// digits, hyphens and underscores, turn spaces into hyphens, drop
// everything else.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// checkFlags verifies every flag registered under cmd/ is mentioned as
// `-name` somewhere in the markdown corpus.
func checkFlags(root string, mdFiles, goFiles []string) []string {
	var corpus strings.Builder
	for _, rel := range mdFiles {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			continue // already reported by checkLinks
		}
		corpus.Write(data)
		corpus.WriteByte('\n')
	}
	docs := corpus.String()

	var problems []string
	for _, rel := range goFiles {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", rel, err))
			continue
		}
		for _, m := range flagDecl.FindAllStringSubmatch(string(data), -1) {
			name := m[1]
			// A documented flag appears as -name followed by a
			// non-flag-name character (space, =, punctuation, EOL).
			mention := regexp.MustCompile(`-` + regexp.QuoteMeta(name) + `([^a-zA-Z0-9_-]|$)`)
			if !mention.MatchString(docs) {
				problems = append(problems, fmt.Sprintf("%s: flag -%s is not mentioned in any .md file", rel, name))
			}
		}
	}
	return problems
}
