// Command tracediff aligns two recorded benchmark traces level by level and
// prints a per-level / per-module delta table. Both export formats are
// accepted on either side: the Chrome trace-event JSON written by the
// -chrome-trace flags and the {"runs": [...]} dump written by -trace-out or
// served at /traces. See docs/OBSERVABILITY.md.
//
// Usage:
//
//	tracediff before.json after.json
package main

import (
	"fmt"
	"os"

	"swbfs/internal/obs"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracediff <a.json> <b.json>")
		os.Exit(2)
	}
	a, err := readSummaries(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
	b, err := readSummaries(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
	obs.WriteTraceDiff(os.Stdout, a, b, os.Args[1], os.Args[2])
}

func readSummaries(path string) ([]obs.RunSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := obs.ReadRunSummaries(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return runs, nil
}
