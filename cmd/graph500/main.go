// Command graph500 runs the full Graph500 benchmark on the simulated
// Sunway TaihuLight machine: Kronecker generation, graph construction,
// 64 rooted BFS runs on the configured machine, validation, and
// harmonic-mean TEPS reporting.
//
// Example:
//
//	graph500 -scale 18 -nodes 64 -transport relay -engine cpe
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"swbfs/internal/chaos"
	"swbfs/internal/ckpt"
	"swbfs/internal/comm"
	"swbfs/internal/core"
	"swbfs/internal/graph"
	"swbfs/internal/graph500"
	"swbfs/internal/obs"
	"swbfs/internal/perf"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgefactor = flag.Int("edgefactor", 16, "edges per vertex")
		nodes      = flag.Int("nodes", 16, "simulated compute nodes")
		superSize  = flag.Int("super", 16, "nodes per super node (fat-tree scaling)")
		roots      = flag.Int("roots", 64, "number of BFS roots (Graph500 uses 64)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		transport  = flag.String("transport", "relay", "messaging scheme: direct | relay")
		engine     = flag.String("engine", "cpe", "module processing: mpe | cpe")
		noOpt      = flag.Bool("no-direction-opt", false, "disable the hybrid top-down/bottom-up policy")
		noHubs     = flag.Bool("no-hub-prefetch", false, "disable degree-aware hub prefetching")
		noValidate = flag.Bool("skip-validation", false, "skip result validation (timing sweeps only)")
		input      = flag.String("input", "", "edge-list file to benchmark instead of generating (see -format)")
		format     = flag.String("format", "text", "input format: text | binary")
		vertices   = flag.Int64("vertices", 0, "vertex count for -input (0 = max vertex ID + 1)")
		verbose    = flag.Bool("verbose", false, "print per-root and per-level detail")
		compress   = flag.Bool("compress", false, "enable varint-delta message compression (Section 7 extension)")
		codec      = flag.String("codec", "", "wire codec for every channel: raw | varint-delta | bitmap | adaptive (empty = raw; see docs/ARCHITECTURE.md)")
		codecBwd   = flag.String("codec-backward", "", "wire codec override for the backward (bottom-up) channel only: raw | varint-delta | bitmap | adaptive (empty = no override)")
		trace      = flag.String("trace", "", "write per-root/per-level statistics as JSON lines to this file")
		metrics    = flag.Bool("metrics", false, "print the unified metrics registry after the run (see docs/OBSERVABILITY.md)")
		traceOut   = flag.String("trace-out", "", "write the structured per-level BFS trace (one RunTrace per root) as JSON to this file")
		serveAddr  = flag.String("serve", "", "serve live telemetry on this address during the run: /metrics (Prometheus), /traces, /events (SSE), /debug/pprof")
		chromeOut  = flag.String("chrome-trace", "", "write the run timeline (per-node module tracks + relay flow arrows) as Chrome trace-event JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the kernel runs to this file")
		exectrace  = flag.String("exec-trace", "", "write a runtime/trace execution trace of the kernel runs to this file")
		kernel     = flag.String("kernel", "bfs", "benchmark kernel: bfs | sssp (Graph500 v3 second kernel)")
		delta      = flag.Int64("delta", 0, "sssp kernel: delta-stepping bucket width (0 = Bellman-Ford)")
		workers    = flag.Int("workers", 0, "host worker goroutines per simulated node, the CPE-cluster stand-in (0 = GOMAXPROCS/nodes, 1 = serial; results are identical for every width)")

		flightDump = flag.String("flight-dump", "", "write the flight-recorder post-mortem of an aborted run to this file (default: <-trace-out>.flight.json when -trace-out is set; render with flightview)")

		checkpointEvery = flag.Int("checkpoint-every", 0, "write a resumable machine checkpoint every N completed BFS levels (0 = off; see docs/CHAOS.md)")
		checkpointPath  = flag.String("checkpoint", "", "checkpoint file path (default: <-flight-dump>.ckpt.json on abort when -checkpoint-every is set)")
		resumeFrom      = flag.String("resume", "", "resume an interrupted BFS run from this checkpoint file and print its final result (bfs kernel only)")

		chaosSeed       = flag.Int64("chaos-seed", 0, "inject a seeded random fault plan into the simulated fabric (0 = off; see docs/CHAOS.md)")
		chaosPlan       = flag.String("chaos-plan", "", "inject an explicit fault plan, comma-separated fault specs like kill@2:l1:data/forward:0 (wins over -chaos-seed; see docs/CHAOS.md)")
		levelTimeout    = flag.Duration("level-timeout", 0, "abort the run if no BFS level completes within this duration (0 = no watchdog)")
		stragglerFactor = flag.Float64("straggler-factor", 0, "flag nodes whose per-level module host time exceeds this multiple of the fleet mean (0 = off)")
	)
	flag.Parse()

	machine := core.Config{
		Nodes:              *nodes,
		SuperNodeSize:      *superSize,
		DirectionOptimized: !*noOpt,
		HubPrefetch:        !*noHubs,
		SmallMessageMPE:    true,
		Workers:            *workers,
	}
	switch *transport {
	case "direct":
		machine.Transport = core.TransportDirect
	case "relay":
		machine.Transport = core.TransportRelay
	default:
		fatalf("unknown transport %q (want direct or relay)", *transport)
	}
	switch *engine {
	case "mpe":
		machine.Engine = perf.EngineMPE
	case "cpe":
		machine.Engine = perf.EngineCPE
	default:
		fatalf("unknown engine %q (want mpe or cpe)", *engine)
	}

	if *compress {
		machine.Codec = comm.VarintDeltaCodec{}
	}
	if *codec != "" {
		c, err := comm.CodecByName(*codec)
		if err != nil {
			fatalf("%v", err)
		}
		machine.Codec = c
	}
	if *codecBwd != "" {
		c, err := comm.CodecByName(*codecBwd)
		if err != nil {
			fatalf("%v", err)
		}
		machine.CodecBackward = c
	}
	machine.LevelTimeout = *levelTimeout
	machine.StragglerFactor = *stragglerFactor
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			fatalf("%v", err)
		}
		machine.Chaos = &plan
	} else if *chaosSeed != 0 {
		plan := chaos.NewRandomPlan(*chaosSeed, *nodes)
		machine.Chaos = &plan
		fmt.Fprintf(os.Stderr, "graph500: chaos plan from seed %d: %s\n", *chaosSeed, plan)
	}
	machine.Profile = obs.ProfileConfig{CPUProfile: *cpuprofile, ExecTrace: *exectrace}
	if *flightDump == "" && *traceOut != "" {
		*flightDump = *traceOut + ".flight.json"
	}
	machine.FlightDump = *flightDump
	machine.CheckpointEvery = *checkpointEvery
	machine.CheckpointPath = *checkpointPath

	var observer *obs.Observer
	if *metrics || *traceOut != "" || *serveAddr != "" || *chromeOut != "" {
		observer = obs.New()
		// Share one recorder across every root's run so /debug/flight (and
		// an abort's post-mortem) sees the whole benchmark's black box.
		observer.Flight = obs.NewFlightRecorder(0)
		machine.Obs = observer
	}
	if *chromeOut != "" {
		observer.Spans = obs.NewSpanRecorder()
	}
	var server *obs.Server
	if *serveAddr != "" {
		observer.Progress = obs.NewProgressBroker()
		var err error
		server, err = obs.Serve(*serveAddr, observer)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "graph500: telemetry on %s (/metrics /traces /events /debug/pprof)\n", server.URL())
	}

	if *resumeFrom != "" {
		resumeBFS(*resumeFrom, machine, *scale, *edgefactor, *seed, *input, *format, *vertices, *noValidate)
		if observer != nil {
			if err := emitObservability(observer, *metrics, *traceOut, *chromeOut); err != nil {
				fatalf("%v", err)
			}
		}
		holdServer(server)
		return
	}

	if *kernel == "sssp" {
		report, err := graph500.RunSSSP(graph500.SSSPBenchConfig{
			Scale:      *scale,
			EdgeFactor: *edgefactor,
			Seed:       *seed,
			Roots:      *roots,
			Delta:      *delta,
			Machine:    machine,
		})
		if err != nil {
			var ae *core.AbortError
			if errors.As(err, &ae) {
				printAbortReport(ae)
				os.Exit(1)
			}
			fatalf("sssp benchmark failed: %v", err)
		}
		fmt.Printf("KERNEL:               sssp (delta=%d)\n", *delta)
		fmt.Printf("SCALE:                %d\n", *scale)
		fmt.Printf("NROOTS:               %d\n", len(report.Runs))
		fmt.Printf("num_vertices:         %d\n", report.NumVertices)
		fmt.Printf("num_undirected_edges: %d\n", report.NumEdges)
		fmt.Printf("machine:              %s, %d nodes\n", machine.Name(), machine.Nodes)
		fmt.Printf("sssp_time:            %s\n", report.KernelTime)
		fmt.Printf("sssp_TEPS:            %s\n", report.TEPS)
		fmt.Printf("harmonic_mean_GTEPS:  %.4f\n", report.GTEPSHarmonicMean())
		if observer != nil {
			if err := emitObservability(observer, *metrics, *traceOut, *chromeOut); err != nil {
				fatalf("%v", err)
			}
		}
		holdServer(server)
		return
	}
	if *kernel != "bfs" {
		fatalf("unknown kernel %q (want bfs or sssp)", *kernel)
	}

	cfg := graph500.BenchConfig{
		Scale:          *scale,
		EdgeFactor:     *edgefactor,
		Seed:           *seed,
		Roots:          *roots,
		SkipValidation: *noValidate,
		KeepLevels:     *verbose || *trace != "",
		Machine:        machine,
	}
	if *input != "" {
		edges, n, err := loadEdges(*input, *format, *vertices)
		if err != nil {
			fatalf("loading %s: %v", *input, err)
		}
		cfg.Edges, cfg.NumVertices = edges, n
	}

	report, err := graph500.Run(cfg)
	if err != nil {
		var ae *core.AbortError
		if errors.As(err, &ae) {
			printAbortReport(ae)
			os.Exit(1)
		}
		fatalf("benchmark failed: %v", err)
	}
	if *verbose {
		report.PrintDetail(os.Stdout)
	} else {
		report.Print(os.Stdout)
	}
	if *trace != "" {
		if err := writeTrace(*trace, report); err != nil {
			fatalf("writing trace: %v", err)
		}
	}
	if observer != nil {
		if err := emitObservability(observer, *metrics, *traceOut, *chromeOut); err != nil {
			fatalf("%v", err)
		}
	}
	holdServer(server)
}

// resumeBFS continues an interrupted BFS run from a checkpoint file: the
// graph is rebuilt from the same generator flags (the checkpoint's
// fingerprint rejects a mismatched graph), the machine configuration is
// reconstructed from the checkpoint, and only host-side knobs (workers,
// watchdog, observability, chaos, further checkpointing) come from the
// command line. The finished result is bitwise identical to what the
// uninterrupted run would have produced.
func resumeBFS(path string, host core.Config, scale, edgefactor int, seed int64, input, format string, vertices int64, noValidate bool) {
	c, err := ckpt.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if c.Kernel != "bfs" {
		fatalf("checkpoint %s holds a %q run; graph500 -resume supports the bfs kernel (resume other kernels via the algos API, see docs/CHAOS.md)", path, c.Kernel)
	}

	var g *graph.CSR
	if input != "" {
		edges, n, err := loadEdges(input, format, vertices)
		if err != nil {
			fatalf("loading %s: %v", input, err)
		}
		if g, err = graph.BuildCSR(n, edges); err != nil {
			fatalf("%v", err)
		}
	} else {
		kcfg := graph.KroneckerConfig{Scale: scale, EdgeFactor: edgefactor, Seed: seed}
		edges, err := graph.GenerateKronecker(kcfg)
		if err != nil {
			fatalf("%v", err)
		}
		if g, err = graph.BuildCSR(kcfg.NumVertices(), edges); err != nil {
			fatalf("%v", err)
		}
	}

	cfg, err := core.ConfigFromCheckpoint(c.Config)
	if err != nil {
		fatalf("%v", err)
	}
	// Host-side knobs are free to differ from the interrupted run — the
	// modelled result does not depend on them.
	cfg.Workers = host.Workers
	cfg.LevelTimeout = host.LevelTimeout
	cfg.StragglerFactor = host.StragglerFactor
	cfg.FlightDump = host.FlightDump
	cfg.Obs = host.Obs
	cfg.Profile = host.Profile
	cfg.Chaos = host.Chaos
	cfg.CheckpointEvery = host.CheckpointEvery
	cfg.CheckpointPath = host.CheckpointPath

	runner, err := core.NewRunner(cfg, g)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "graph500: resuming bfs from root %d at level boundary %d (%s)\n", c.Root, c.Level, path)
	res, err := runner.Resume(c)
	if err != nil {
		var ae *core.AbortError
		if errors.As(err, &ae) {
			printAbortReport(ae)
			os.Exit(1)
		}
		fatalf("resume failed: %v", err)
	}
	validated := "skipped"
	if !noValidate {
		if _, err := graph500.ValidateParallel(g, graph.Vertex(c.Root), res.Parent, 0); err != nil {
			fatalf("validation failed for resumed root %d: %v", c.Root, err)
		}
		validated = "ok"
	}
	fmt.Printf("KERNEL:               bfs (resumed from level %d)\n", c.Level)
	fmt.Printf("root:                 %d\n", c.Root)
	fmt.Printf("num_vertices:         %d\n", g.N)
	fmt.Printf("num_undirected_edges: %d\n", g.NumEdges()/2)
	fmt.Printf("machine:              %s, %d nodes\n", cfg.Name(), cfg.Nodes)
	fmt.Printf("visited:              %d\n", res.Visited)
	fmt.Printf("traversed_edges:      %d\n", res.TraversedEdges)
	fmt.Printf("levels:               %d\n", len(res.Levels))
	fmt.Printf("bfs_time:             %.6f s (modelled)\n", res.Time)
	fmt.Printf("GTEPS:                %.4f\n", res.GTEPS)
	fmt.Printf("validation:           %s\n", validated)
}

// emitObservability prints the metrics table and/or writes the structured
// and Chrome traces, verifying every run's books balance first.
func emitObservability(observer *obs.Observer, printMetrics bool, traceOut, chromeOut string) error {
	for _, run := range observer.Trace.Runs() {
		if err := run.Reconcile(); err != nil {
			return fmt.Errorf("trace for root %d does not reconcile: %w", run.Root, err)
		}
	}
	if printMetrics {
		fmt.Println()
		observer.Metrics.WriteTable(os.Stdout)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := observer.Trace.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return fmt.Errorf("writing chrome trace: %w", err)
		}
		if err := obs.WriteChromeTrace(f, observer.Trace.Runs(), observer.Spans.Runs()); err != nil {
			f.Close()
			return fmt.Errorf("writing chrome trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing chrome trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "graph500: chrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", chromeOut)
	}
	return nil
}

// printAbortReport renders the partial result of an aborted run: the
// root cause plus every level that completed before the fabric died, so
// a chaos-injected failure is still diagnosable from the console.
func printAbortReport(ae *core.AbortError) {
	fmt.Fprintf(os.Stderr, "graph500: run from root %d ABORTED: %v\n", ae.Root, ae.Cause)
	fmt.Fprintf(os.Stderr, "graph500: partial result: %d completed levels\n", len(ae.CompletedLevels))
	for _, l := range ae.CompletedLevels {
		fmt.Fprintf(os.Stderr, "    L%-2d %-9s work=%-10d sent=%-10d msgs=%-6d %s\n",
			l.Level, l.Direction, l.MaxNodeProcessedBytes, l.MaxNodeSentBytes,
			l.MaxNodeMessages, l.Net.String())
	}
	if ae.FlightPath != "" {
		fmt.Fprintf(os.Stderr, "graph500: flight-recorder post-mortem written to %s (render with flightview)\n", ae.FlightPath)
	} else if ae.FlightDump != nil {
		fmt.Fprintf(os.Stderr, "graph500: flight-recorder post-mortem captured %d event(s); pass -flight-dump to write it to a file\n",
			len(ae.FlightDump.Events))
	}
	if ae.CheckpointPath != "" {
		fmt.Fprintf(os.Stderr, "graph500: checkpoint at level boundary %d written to %s (continue with -resume)\n",
			ae.Checkpoint.Level, ae.CheckpointPath)
	} else if ae.Checkpoint != nil {
		fmt.Fprintf(os.Stderr, "graph500: checkpoint at level boundary %d captured in memory; pass -checkpoint or -flight-dump to write it to a file\n",
			ae.Checkpoint.Level)
	}
}

// holdServer keeps the telemetry server alive after the benchmark so its
// endpoints stay inspectable; Ctrl-C exits.
func holdServer(server *obs.Server) {
	if server == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "graph500: benchmark done; telemetry still on %s — Ctrl-C to exit\n", server.URL())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	server.Close()
}

// writeTrace dumps one JSON object per BFS run (with its per-level
// statistics) for external analysis tooling.
func writeTrace(path string, report *graph500.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, run := range report.Runs {
		if err := enc.Encode(run); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// loadEdges reads an edge list and infers the vertex count when not given.
func loadEdges(path, format string, vertices int64) ([]graph.Edge, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var edges []graph.Edge
	switch format {
	case "text":
		edges, err = graph.ReadEdgesText(f)
	case "binary":
		edges, err = graph.ReadEdgesBinary(f)
	default:
		return nil, 0, fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, 0, err
	}
	if vertices == 0 {
		for _, e := range edges {
			if int64(e.From) >= vertices {
				vertices = int64(e.From) + 1
			}
			if int64(e.To) >= vertices {
				vertices = int64(e.To) + 1
			}
		}
	}
	return edges, vertices, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graph500: "+format+"\n", args...)
	os.Exit(1)
}
