// Command benchtrend maintains the repository's benchmark trajectory.
//
// With no mode flag it runs the standard sweep and writes the next
// schema-versioned BENCH_<n>.json snapshot into -dir:
//
//	benchtrend                     # writes BENCH_<n>.json in .
//	benchtrend -out baseline.json  # explicit path
//
// Comparison modes print a per-metric delta table and exit nonzero when
// the harmonic-mean GTEPS of any scenario regresses beyond -threshold:
//
//	benchtrend -compare BENCH_0.json BENCH_1.json
//	benchtrend -compare-latest     # newest two BENCH_<n>.json in -dir
//	benchtrend -history            # GTEPS sparkline over every snapshot
//
// See docs/OBSERVABILITY.md for the snapshot schema and workflow.
package main

import (
	"flag"
	"fmt"
	"os"

	"swbfs/internal/trend"
)

func main() {
	var (
		dir           = flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
		out           = flag.String("out", "", "write the snapshot to this path instead of the next BENCH_<n>.json in -dir")
		seed          = flag.Int64("seed", 1, "deterministic seed for the sweep")
		threshold     = flag.Float64("threshold", trend.DefaultThreshold, "relative GTEPS drop that fails the comparison")
		compare       = flag.Bool("compare", false, "compare two snapshot files given as arguments instead of running the sweep")
		compareLatest = flag.Bool("compare-latest", false, "compare the newest two BENCH_<n>.json snapshots in -dir")
		history       = flag.Bool("history", false, "print per-scenario GTEPS sparklines over every BENCH_<n>.json in -dir")
		svgOut        = flag.String("svg", "", "with -history: also render the trajectory as an SVG sparkline file at this path")
	)
	flag.Parse()
	if *svgOut != "" && !*history {
		fatalf("-svg is only valid together with -history")
	}

	switch {
	case *history:
		if flag.NArg() != 0 {
			fatalf("-history takes no arguments (set -dir)")
		}
		hist, err := trend.History(*dir)
		if err != nil {
			fatalf("%v", err)
		}
		trend.WriteHistory(os.Stdout, hist)
		if *svgOut != "" {
			f, err := os.Create(*svgOut)
			if err != nil {
				fatalf("%v", err)
			}
			if err := trend.WriteHistorySVG(f, hist); err != nil {
				f.Close()
				fatalf("rendering %s: %v", *svgOut, err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "benchtrend: wrote %s\n", *svgOut)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two snapshot files (old new)")
		}
		runCompare(flag.Arg(0), flag.Arg(1), *threshold)
	case *compareLatest:
		if flag.NArg() != 0 {
			fatalf("-compare-latest takes no arguments (set -dir)")
		}
		paths, err := trend.SnapshotPaths(*dir)
		if err != nil {
			fatalf("%v", err)
		}
		if len(paths) < 2 {
			fmt.Fprintf(os.Stderr, "benchtrend: only %d snapshot(s) in %s — nothing to compare\n", len(paths), *dir)
			return
		}
		runCompare(paths[len(paths)-2], paths[len(paths)-1], *threshold)
	default:
		if flag.NArg() != 0 {
			fatalf("unexpected arguments %v (use -compare old new to compare)", flag.Args())
		}
		path := *out
		if path == "" {
			var err error
			path, err = trend.NextSnapshotPath(*dir)
			if err != nil {
				fatalf("%v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "benchtrend: running the standard sweep (seed %d)...\n", *seed)
		snap, err := trend.Collect(trend.Options{Seed: *seed, GitDir: *dir})
		if err != nil {
			fatalf("%v", err)
		}
		if err := trend.WriteSnapshot(path, snap); err != nil {
			fatalf("%v", err)
		}
		for _, sc := range snap.Scenarios {
			fmt.Fprintf(os.Stderr, "benchtrend:   %-22s %8.4f GTEPS  (%.1fs host)\n",
				sc.Name, sc.GTEPS, sc.HostSeconds)
		}
		fmt.Fprintf(os.Stderr, "benchtrend: wrote %s (git %s, %.1fs total)\n",
			path, snap.GitSHA, snap.HostSeconds)
	}
}

// runCompare loads both snapshots, prints the delta table, and exits
// nonzero on a GTEPS regression — the CI gate.
func runCompare(oldPath, newPath string, threshold float64) {
	oldSnap, err := trend.ReadSnapshot(oldPath)
	if err != nil {
		fatalf("%v", err)
	}
	newSnap, err := trend.ReadSnapshot(newPath)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("comparing %s (git %s) -> %s (git %s)\n\n", oldPath, oldSnap.GitSHA, newPath, newSnap.GitSHA)
	rep := trend.Compare(oldSnap, newSnap, threshold)
	rep.Write(os.Stdout)
	if rep.Regressed() {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(1)
}
