// Command swbfs-bench regenerates the paper's tables and figures on the
// simulated machine. Each subcommand prints one artifact; `all` prints
// everything in paper order.
//
//	swbfs-bench table1    machine specification (Table 1)
//	swbfs-bench fig3      DMA bandwidth vs chunk size (Figure 3)
//	swbfs-bench fig5      memory bandwidth vs CPE count (Figure 5)
//	swbfs-bench regbus    contention-free shuffle bandwidth (Section 4.3)
//	swbfs-bench relaybw   relay vs direct big-message bandwidth (Section 4.4)
//	swbfs-bench msgcount  connection & MPI memory scaling (Section 4.4)
//	swbfs-bench fig11     technique comparison sweep (Figure 11)
//	swbfs-bench fig12     weak scaling sweep (Figure 12)
//	swbfs-bench strong    strong-scaling complement to Figure 12
//	swbfs-bench table2    cross-system comparison (Table 2)
//	swbfs-bench headline  full-machine GTEPS projection
//	swbfs-bench ablations design-choice ablation study
//	swbfs-bench policy    direction-policy threshold sensitivity
//	swbfs-bench all       everything
//
// Use -quick for smaller sweeps, -full for larger ones, and
// -format csv|json for machine-readable output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"os"
	"os/signal"
	"syscall"

	"swbfs/internal/chaos"
	"swbfs/internal/ckpt"
	"swbfs/internal/comm"
	"swbfs/internal/core"
	"swbfs/internal/experiments"
	"swbfs/internal/graph"
	"swbfs/internal/obs"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "small sweeps (seconds)")
		full       = flag.Bool("full", false, "large sweeps (minutes; up to 256 functional nodes)")
		seed       = flag.Int64("seed", 20160624, "deterministic seed")
		roots      = flag.Int("roots", 0, "BFS roots per data point (0 = per-experiment default)")
		format     = flag.String("format", "text", "output format: text | csv | json")
		metrics    = flag.Bool("metrics", false, "print the unified metrics registry after the sweep (see docs/OBSERVABILITY.md)")
		traceOut   = flag.String("trace-out", "", "write the structured per-level BFS traces of all functional runs as JSON to this file")
		chromeOut  = flag.String("chrome-trace", "", "write the sweep's run timelines (per-node module tracks) as Chrome trace-event JSON to this file")
		serveAddr  = flag.String("serve", "", "serve live telemetry on this address during the sweep: /metrics (Prometheus), /traces, /events (SSE), /debug/pprof")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		exectrace  = flag.String("exec-trace", "", "write a runtime/trace execution trace of the sweep to this file")
		workers    = flag.Int("workers", 0, "host worker goroutines per simulated node (0 = GOMAXPROCS/nodes; results are identical for every width)")
		codec      = flag.String("codec", "", "wire codec for every channel of functional runs: raw | varint-delta | bitmap | adaptive (empty = raw; see docs/ARCHITECTURE.md)")
		codecBwd   = flag.String("codec-backward", "", "wire codec override for the backward (bottom-up) channel of functional runs: raw | varint-delta | bitmap | adaptive (empty = no override)")
		flightDump = flag.String("flight-dump", "", "write the flight-recorder post-mortem of an aborted functional run to this file (default: <-trace-out>.flight.json when -trace-out is set; render with flightview)")

		checkpointEvery = flag.Int("checkpoint-every", 0, "write a resumable machine checkpoint every N completed levels of each functional measurement (0 = off; see docs/CHAOS.md)")
		checkpointPath  = flag.String("checkpoint", "", "checkpoint file path (default: <-flight-dump>.ckpt.json on abort when -checkpoint-every is set)")
		resumeFrom      = flag.String("resume", "", "resume an interrupted functional BFS run from this checkpoint file (no subcommand; graph rebuilt from -seed)")

		chaosSeed       = flag.Int64("chaos-seed", 0, "inject a seeded random fault plan into every functional measurement (0 = off; see docs/CHAOS.md)")
		chaosPlan       = flag.String("chaos-plan", "", "inject an explicit fault plan into every functional measurement (wins over -chaos-seed; see docs/CHAOS.md)")
		levelTimeout    = flag.Duration("level-timeout", 0, "abort a functional run if no BFS level completes within this duration (0 = no watchdog)")
		stragglerFactor = flag.Float64("straggler-factor", 0, "flag nodes whose per-level module host time exceeds this multiple of the fleet mean (0 = off)")
	)
	flag.Parse()
	if *resumeFrom == "" && flag.NArg() != 1 {
		usage()
	}
	if *resumeFrom != "" && flag.NArg() != 0 {
		usage()
	}
	var cmd string
	if flag.NArg() == 1 {
		cmd = flag.Arg(0)
	}
	experiments.SetWorkers(*workers)
	codecAll, err := comm.CodecByName(*codec)
	if err != nil {
		fatalf("%v", err)
	}
	codecBackward, err := comm.CodecByName(*codecBwd)
	if err != nil {
		fatalf("%v", err)
	}
	experiments.SetCodec(codecAll, codecBackward)
	experiments.SetLevelTimeout(*levelTimeout)
	experiments.SetStragglerFactor(*stragglerFactor)
	if *flightDump == "" && *traceOut != "" {
		*flightDump = *traceOut + ".flight.json"
	}
	experiments.SetFlightDump(*flightDump)
	experiments.SetCheckpoint(*checkpointEvery, *checkpointPath)
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			fatalf("%v", err)
		}
		experiments.SetChaos(&plan, 0)
	} else if *chaosSeed != 0 {
		experiments.SetChaos(nil, *chaosSeed)
	}

	var observer *obs.Observer
	if *metrics || *traceOut != "" || *serveAddr != "" || *chromeOut != "" {
		observer = obs.New()
		// One shared recorder across the sweep so /debug/flight serves the
		// whole black box, not just the last measurement's.
		observer.Flight = obs.NewFlightRecorder(0)
		experiments.SetObserver(observer)
	}
	if *chromeOut != "" {
		observer.Spans = obs.NewSpanRecorder()
	}
	var server *obs.Server
	if *serveAddr != "" {
		observer.Progress = obs.NewProgressBroker()
		var err error
		server, err = obs.Serve(*serveAddr, observer)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "swbfs-bench: telemetry on %s (/metrics /traces /events /debug/pprof)\n", server.URL())
	}

	// Host-side profiling of the whole sweep (the same StartProfile hook
	// cmd/graph500 wires around its kernel runs).
	if *cpuprofile != "" || *exectrace != "" {
		stop, err := obs.StartProfile(obs.ProfileConfig{CPUProfile: *cpuprofile, ExecTrace: *exectrace})
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "swbfs-bench: stopping profile: %v\n", err)
			}
		}()
	}

	fig11opts := experiments.Fig11Options{Seed: *seed, Roots: *roots}
	fig12opts := experiments.Fig12Options{Seed: *seed, Roots: *roots}
	headlineLog := 13
	switch {
	case *quick:
		fig11opts.FunctionalNodes = []int{1, 4, 16}
		fig11opts.PerNodeLog = 11
		fig12opts.FunctionalNodes = []int{4, 16}
		fig12opts.PerNodeLogs = []int{7, 9, 11}
		headlineLog = 11
	case *full:
		fig11opts.FunctionalNodes = []int{1, 4, 16, 64, 256}
		fig12opts.FunctionalNodes = []int{4, 16, 64, 256}
	}

	emit := func(t *experiments.Table) {
		switch *format {
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatalf("csv: %v", err)
			}
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fatalf("json: %v", err)
			}
		default:
			t.Print(os.Stdout)
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			emit(experiments.Table1())
		case "fig3":
			emit(experiments.Fig3())
		case "fig5":
			emit(experiments.Fig5())
		case "regbus":
			t, err := experiments.RegBus(0)
			if err != nil {
				fatalf("regbus: %v", err)
			}
			emit(t)
		case "relaybw":
			emit(experiments.RelayBW())
		case "msgcount":
			emit(experiments.MsgCount())
		case "fig11":
			emit(experiments.Fig11(fig11opts))
		case "fig12":
			emit(experiments.Fig12(fig12opts))
		case "strong":
			emit(experiments.StrongScaling(experiments.StrongOptions{Seed: *seed, Roots: *roots, Quick: *quick}))
		case "table2":
			_, proj := experiments.Headline(headlineLog, *roots, *seed)
			emit(experiments.Table2(proj))
		case "ablations":
			ablOpts := experiments.AblationOptions{Seed: *seed, Roots: *roots}
			if *quick {
				ablOpts.Scale = 13
			}
			t, err := experiments.Ablations(ablOpts)
			if err != nil {
				fatalf("ablations: %v", err)
			}
			emit(t)
		case "policy":
			polOpts := experiments.PolicySweepOptions{Seed: *seed, Roots: *roots}
			if *quick {
				polOpts.Scale = 12
			}
			t, err := experiments.PolicySweep(polOpts)
			if err != nil {
				fatalf("policy: %v", err)
			}
			emit(t)
		case "headline":
			m, proj := experiments.Headline(headlineLog, *roots, *seed)
			if m.Crashed() {
				fatalf("headline measurement failed: %v", m.Err)
			}
			fmt.Printf("functional: %d nodes, %d vtx/node, %.3f GTEPS (measured)\n",
				m.Nodes, m.PerNodeVertices, m.GTEPS)
			if proj.Crashed() {
				fatalf("projection failed: %v", proj.Err)
			}
			fmt.Printf("projected:  %d nodes, %.1f GTEPS (modelled)\n", proj.Nodes, proj.GTEPS)
			fmt.Printf("paper:      40,768 nodes, 23755.7 GTEPS (measured on TaihuLight)\n")
		default:
			usage()
		}
	}

	switch {
	case *resumeFrom != "":
		host := core.Config{
			Workers:         *workers,
			LevelTimeout:    *levelTimeout,
			StragglerFactor: *stragglerFactor,
			FlightDump:      *flightDump,
			Obs:             observer,
			CheckpointEvery: *checkpointEvery,
			CheckpointPath:  *checkpointPath,
		}
		if *chaosPlan != "" {
			plan, err := chaos.ParsePlan(*chaosPlan)
			if err != nil {
				fatalf("%v", err)
			}
			host.Chaos = &plan
		}
		resumeBFS(*resumeFrom, *seed, *chaosSeed, host)
	case cmd == "all":
		for _, name := range []string{
			"table1", "fig3", "fig5", "regbus", "relaybw", "msgcount",
			"fig11", "fig12", "strong", "table2", "headline", "ablations", "policy",
		} {
			run(name)
			fmt.Println()
		}
	default:
		run(cmd)
	}

	if observer != nil {
		if *metrics {
			fmt.Println()
			observer.Metrics.WriteTable(os.Stdout)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("writing trace: %v", err)
			}
			if err := observer.Trace.WriteJSON(f); err != nil {
				f.Close()
				fatalf("writing trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("writing trace: %v", err)
			}
		}
		if *chromeOut != "" {
			f, err := os.Create(*chromeOut)
			if err != nil {
				fatalf("writing chrome trace: %v", err)
			}
			if err := obs.WriteChromeTrace(f, observer.Trace.Runs(), observer.Spans.Runs()); err != nil {
				f.Close()
				fatalf("writing chrome trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("writing chrome trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "swbfs-bench: chrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *chromeOut)
		}
	}
	if server != nil {
		fmt.Fprintf(os.Stderr, "swbfs-bench: sweep done; telemetry still on %s — Ctrl-C to exit\n", server.URL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		server.Close()
	}
}

// resumeBFS continues an interrupted functional BFS run from a
// level-boundary checkpoint file (see docs/CHAOS.md "Checkpoint &
// resume"). The Kronecker graph is rebuilt from -seed and the
// checkpoint's vertex count — the checkpoint's machine fingerprint
// rejects a mismatched graph — and the machine configuration comes from
// the checkpoint itself; only host-side knobs (workers, watchdog,
// observability, chaos, further checkpointing) come from the command
// line. The finished run is bitwise identical to an uninterrupted one.
func resumeBFS(path string, seed, chaosSeed int64, host core.Config) {
	c, err := ckpt.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if c.Kernel != "bfs" {
		fatalf("checkpoint %s holds a %q run; swbfs-bench -resume supports the bfs kernel (resume other kernels via the algos API)", path, c.Kernel)
	}
	n := c.Config.GraphN
	if n <= 0 || n&(n-1) != 0 {
		fatalf("checkpoint vertex count %d is not a power of two — not a swbfs-bench Kronecker run", n)
	}
	g, err := graph.BuildKronecker(graph.KroneckerConfig{Scale: bits.TrailingZeros64(uint64(n)), Seed: seed})
	if err != nil {
		fatalf("%v", err)
	}

	cfg, err := core.ConfigFromCheckpoint(c.Config)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Workers = host.Workers
	cfg.LevelTimeout = host.LevelTimeout
	cfg.StragglerFactor = host.StragglerFactor
	cfg.FlightDump = host.FlightDump
	cfg.Obs = host.Obs
	cfg.CheckpointEvery = host.CheckpointEvery
	cfg.CheckpointPath = host.CheckpointPath
	if host.Chaos != nil {
		cfg.Chaos = host.Chaos
	} else if chaosSeed != 0 {
		plan := chaos.NewRandomPlan(chaosSeed, cfg.Nodes)
		cfg.Chaos = &plan
	}

	runner, err := core.NewRunner(cfg, g)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "swbfs-bench: resuming bfs from root %d at level boundary %d (%s)\n", c.Root, c.Level, path)
	res, err := runner.Resume(c)
	if err != nil {
		var ae *core.AbortError
		if errors.As(err, &ae) {
			fmt.Fprintf(os.Stderr, "swbfs-bench: resumed run ABORTED: %v\n", ae.Cause)
			if ae.CheckpointPath != "" {
				fmt.Fprintf(os.Stderr, "swbfs-bench: checkpoint at level boundary %d written to %s (continue with -resume)\n",
					ae.Checkpoint.Level, ae.CheckpointPath)
			}
			os.Exit(1)
		}
		fatalf("resume failed: %v", err)
	}
	fmt.Printf("resumed bfs: root %d, %d vertices, visited %d, traversed %d edges, %d levels, %.3f GTEPS (modelled)\n",
		c.Root, g.N, res.Visited, res.TraversedEdges, len(res.Levels), res.GTEPS)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: swbfs-bench [-quick|-full] [-seed N] [-roots N] [-format text|csv|json] <table1|fig3|fig5|regbus|relaybw|msgcount|fig11|fig12|strong|table2|headline|ablations|policy|all>")
	fmt.Fprintln(os.Stderr, "       swbfs-bench -resume <ckpt.json> [-seed N]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "swbfs-bench: "+format+"\n", args...)
	os.Exit(1)
}
