// Command flightview renders a flight-recorder dump — the black-box
// post-mortem an aborted run writes via the -flight-dump flags, the
// AbortError attachment, or /debug/flight on the telemetry server — as a
// per-node event timeline, with anomalies marked [injected] when the
// run's chaos injection log explains them and [emergent] otherwise. With
// -diff it compares two dumps from the same seed and exits nonzero when
// they diverge. See docs/OBSERVABILITY.md "Flight recorder & post-mortems".
//
// With -checkpoint it instead inspects a level-boundary checkpoint file
// (written by -checkpoint / the abort auto-checkpoint; see docs/CHAOS.md
// "Checkpoint & resume"): kernel, boundary level, machine fingerprint,
// per-level history and restart counters.
//
// Usage:
//
//	flightview run.flight.json
//	flightview -diff a.flight.json b.flight.json
//	flightview -checkpoint run.ckpt.json
package main

import (
	"flag"
	"fmt"
	"os"

	"swbfs/internal/ckpt"
	"swbfs/internal/flight"
	"swbfs/internal/obs"
)

func main() {
	diff := flag.Bool("diff", false, "diff two dumps from the same seed instead of rendering one")
	checkpoint := flag.Bool("checkpoint", false, "inspect a level-boundary checkpoint file instead of a flight dump")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flightview <dump.json>")
		fmt.Fprintln(os.Stderr, "       flightview -diff <a.json> <b.json>")
		fmt.Fprintln(os.Stderr, "       flightview -checkpoint <ckpt.json>")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *checkpoint {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		c, err := ckpt.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := ckpt.Render(os.Stdout, c); err != nil {
			fatal(err)
		}
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		a, b := readDump(flag.Arg(0)), readDump(flag.Arg(1))
		n, err := flight.Diff(os.Stdout, a, b, flag.Arg(0), flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := flight.Render(os.Stdout, readDump(flag.Arg(0))); err != nil {
		fatal(err)
	}
}

func readDump(path string) *obs.FlightDump {
	d, err := obs.ReadFlightDumpFile(path)
	if err != nil {
		fatal(err)
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flightview:", err)
	os.Exit(1)
}
