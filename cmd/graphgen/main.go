// Command graphgen emits a Graph500 Kronecker edge list, either as text
// ("u<TAB>v" per line) or as the packed little-endian binary format the
// reference implementation uses (two int64 per edge).
//
//	graphgen -scale 20 -seed 7 > edges.txt
//	graphgen -scale 20 -format binary -out edges.bin
//
// A one-line summary (vertices, edges, bytes, elapsed) always goes to
// stderr; at -scale >= 22 (tens of millions of edges and up) periodic
// progress lines report generation and write progress.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"swbfs/internal/graph"
)

// progressScale is the -scale threshold for periodic progress reporting;
// below it runs finish in seconds and progress would be noise.
const progressScale = 22

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgefactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		format     = flag.String("format", "text", "output format: text | binary")
		out        = flag.String("out", "-", "output path ('-' for stdout)")
		shards     = flag.Int("shards", 1, "parallel generator shards; part of the graph identity (1 reproduces the historical serial stream)")
	)
	flag.Parse()

	start := time.Now()
	cfg := graph.KroneckerConfig{Scale: *scale, EdgeFactor: *edgefactor, Seed: *seed, Shards: *shards}
	verbose := *scale >= progressScale
	if verbose {
		fmt.Fprintf(os.Stderr, "graphgen: generating %d vertices, %d edges (scale %d)...\n",
			cfg.NumVertices(), cfg.NumEdges(), *scale)
	}
	edges, err := graph.GenerateKronecker(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "graphgen: generated %d edges in %s, writing %s...\n",
			len(edges), time.Since(start).Round(time.Millisecond), *format)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		w = f
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)

	// report prints write progress every ~5% of the edge list on big runs.
	step := len(edges) / 20
	report := func(i int) {
		if !verbose || step == 0 || (i+1)%step != 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote %d/%d edges (%d%%)\n",
			i+1, len(edges), (i+1)*100/len(edges))
	}

	switch *format {
	case "text":
		for i, e := range edges {
			fmt.Fprintf(bw, "%d\t%d\n", e.From, e.To)
			report(i)
		}
	case "binary":
		var buf [16]byte
		for i, e := range edges {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(e.From))
			binary.LittleEndian.PutUint64(buf[8:16], uint64(e.To))
			if _, err := bw.Write(buf[:]); err != nil {
				fatalf("write: %v", err)
			}
			report(i)
		}
	default:
		fatalf("unknown format %q", *format)
	}
	if err := bw.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %d vertices, %d edges, %d bytes written in %s\n",
		cfg.NumVertices(), len(edges), cw.n, time.Since(start).Round(time.Millisecond))
}

// countingWriter tracks bytes written through it for the summary line.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
