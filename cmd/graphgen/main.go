// Command graphgen emits a Graph500 Kronecker edge list, either as text
// ("u<TAB>v" per line) or as the packed little-endian binary format the
// reference implementation uses (two int64 per edge).
//
//	graphgen -scale 20 -seed 7 > edges.txt
//	graphgen -scale 20 -format binary -out edges.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"swbfs/internal/graph"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgefactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		format     = flag.String("format", "text", "output format: text | binary")
		out        = flag.String("out", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	edges, err := graph.GenerateKronecker(graph.KroneckerConfig{
		Scale: *scale, EdgeFactor: *edgefactor, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer func() {
		if err := bw.Flush(); err != nil {
			fatalf("flush: %v", err)
		}
	}()

	switch *format {
	case "text":
		for _, e := range edges {
			fmt.Fprintf(bw, "%d\t%d\n", e.From, e.To)
		}
	case "binary":
		var buf [16]byte
		for _, e := range edges {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(e.From))
			binary.LittleEndian.PutUint64(buf[8:16], uint64(e.To))
			if _, err := bw.Write(buf[:]); err != nil {
				fatalf("write: %v", err)
			}
		}
	default:
		fatalf("unknown format %q", *format)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
