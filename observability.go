package swbfs

import (
	"io"

	"swbfs/internal/core"
	"swbfs/internal/obs"
)

// Observability surface of the public API: attach an Observer to
// MachineConfig.Obs and every BFS and algorithm run feeds it — metrics,
// structured run traces, module spans for the Chrome export and live
// progress events. See docs/OBSERVABILITY.md for the full tour.

// Observer bundles the observability sinks a run feeds; any field may be
// nil to disable that sink.
type Observer = obs.Observer

// NewObserver returns an Observer with the metrics and trace sinks
// enabled. Attach a ProgressBroker (for live events) or a SpanRecorder
// (for Chrome traces) to taste.
func NewObserver() *Observer { return obs.New() }

// ProgressBroker fans live per-level / per-round progress events out to
// subscribers — the engine behind the telemetry server's /events stream.
type ProgressBroker = obs.ProgressBroker

// NewProgressBroker returns an empty broker; assign it to Observer.Progress.
func NewProgressBroker() *ProgressBroker { return obs.NewProgressBroker() }

// LiveEvent is one live progress update from a running kernel. Kind is one
// of the Event* constants; Kernel names the algorithm ("sssp", "wcc", ...)
// and is empty for BFS.
type LiveEvent = obs.LiveEvent

// Live event kinds published by runs.
const (
	// EventRunStart opens a rooted run.
	EventRunStart = obs.EventRunStart
	// EventLevel reports one completed BFS level or algorithm round.
	EventLevel = obs.EventLevel
	// EventRunDone closes a run with its headline results.
	EventRunDone = obs.EventRunDone
	// EventStraggler flags a node that exceeded the straggler factor.
	EventStraggler = obs.EventStraggler
)

// AbortError is returned when a run tears down early — a chaos-injected
// node kill, a watchdog timeout, or any module error. It carries the
// original cause (errors.Is/As see through it) and the levels or rounds
// that completed before the failure.
type AbortError = core.AbortError

// ErrLevelTimeout is the watchdog's abort cause: no level or round
// completed within MachineConfig.LevelTimeout.
var ErrLevelTimeout = core.ErrLevelTimeout

// FlightRecorder is the always-on black box of the simulated machine: a
// fixed-capacity per-node ring of structured events (sends and receives
// with retry counts, chaos injections, duplicate drops, round windows,
// watchdog activity). Runs allocate a private recorder automatically;
// attach one to Observer.Flight to share it with the telemetry server
// (/debug/flight) or to dump it yourself. On an aborted run the recorder
// drains into AbortError.FlightDump (and MachineConfig.FlightDump names a
// file to write it to). Render dumps with cmd/flightview. See
// docs/OBSERVABILITY.md "Flight recorder & post-mortems".
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder builds a recorder with the given per-node ring
// capacity (0 selects the default, obs.DefaultFlightCapacity events).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// FlightDump is the schema-versioned JSON export of a FlightRecorder:
// canonical deterministic event order, so dumps from identical seeds and
// configurations are byte-identical.
type FlightDump = obs.FlightDump

// FlightEvent is one recorded black-box event.
type FlightEvent = obs.FlightEvent

// WriteFlightDump serializes a dump as indented JSON.
func WriteFlightDump(w io.Writer, d *FlightDump) error { return obs.WriteFlightDump(w, d) }

// ReadFlightDump parses a dump and validates its schema version.
func ReadFlightDump(r io.Reader) (*FlightDump, error) { return obs.ReadFlightDump(r) }
