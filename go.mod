module swbfs

go 1.22
