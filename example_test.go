package swbfs_test

import (
	"fmt"

	"swbfs"
)

// Example runs one validated BFS on the simulated machine — deterministic
// from the seeds, so the output is checked by `go test`.
func Example() {
	g, err := swbfs.GenerateGraph(swbfs.GraphConfig{Scale: 10, Seed: 42})
	if err != nil {
		panic(err)
	}
	m, err := swbfs.NewMachine(swbfs.DefaultMachine(4), g)
	if err != nil {
		panic(err)
	}
	_, root := g.MaxDegree()
	res, err := m.BFS(root)
	if err != nil {
		panic(err)
	}
	if _, err := swbfs.ValidateBFS(g, root, res.Parent); err != nil {
		panic(err)
	}
	fmt.Printf("visited %d of %d vertices in %d levels\n", res.Visited, g.N, len(res.Levels))
	// Output: visited 899 of 1024 vertices in 4 levels
}

// ExampleWCC labels weakly connected components on the same machine.
func ExampleWCC() {
	g, err := swbfs.BuildGraph(6, []swbfs.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, // component {0,1,2}
		{From: 3, To: 4}, // component {3,4}
	})
	if err != nil {
		panic(err)
	}
	res, err := swbfs.WCC(swbfs.DefaultMachine(2), g)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Components, res.Label)
	// Output: 3 [0 0 0 3 3 5]
}

// ExampleSSSP computes weighted shortest paths.
func ExampleSSSP() {
	g, err := swbfs.BuildGraph(4, []swbfs.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 2}, {From: 2, To: 3},
	})
	if err != nil {
		panic(err)
	}
	wg, err := swbfs.GenerateWeights(g, 1, 1) // all weights 1
	if err != nil {
		panic(err)
	}
	res, err := swbfs.SSSP(swbfs.DefaultMachine(2), wg, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Dist)
	// Output: [0 1 1 2]
}
