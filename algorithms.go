package swbfs

import (
	"swbfs/internal/algos"
	"swbfs/internal/graph"
)

// Beyond BFS: the paper's Section 8 observes that its three techniques
// transfer directly to other irregular graph algorithms whose key
// operation is shuffling dynamically generated data — SSSP, WCC, PageRank
// and K-core decomposition. This file exposes those algorithms, each
// running on the same simulated machine (transports, traffic accounting,
// timing model) as the BFS engine.

// WeightedGraph pairs a Graph with positive, symmetric edge weights.
type WeightedGraph = graph.WeightedCSR

// GenerateWeights attaches deterministic pseudo-random weights in
// [1, maxWeight] to a symmetric graph (both directions equal).
func GenerateWeights(g *Graph, maxWeight, seed int64) (*WeightedGraph, error) {
	return graph.GenerateWeights(g, maxWeight, seed)
}

// InfDistance marks unreachable vertices in SSSP results.
const InfDistance = algos.InfDistance

// SSSPResult holds single-source shortest-path distances plus run
// statistics from the simulated machine.
type SSSPResult = algos.SSSPResult

// SSSP computes single-source shortest paths (frontier-driven
// Bellman-Ford) on the simulated machine.
func SSSP(cfg MachineConfig, g *WeightedGraph, root Vertex) (*SSSPResult, error) {
	return algos.SSSP(cfg, g, root)
}

// DeltaSSSPResult extends SSSP output with bucket/work accounting.
type DeltaSSSPResult = algos.DeltaSSSPResult

// DeltaSSSP computes single-source shortest paths with Meyer-Sanders
// delta-stepping (bucket width delta; 0 picks the max edge weight).
func DeltaSSSP(cfg MachineConfig, g *WeightedGraph, root Vertex, delta int64) (*DeltaSSSPResult, error) {
	return algos.DeltaSSSP(cfg, g, root, delta)
}

// WCCResult labels every vertex with the smallest vertex ID of its
// weakly connected component.
type WCCResult = algos.WCCResult

// WCC computes weakly connected components by distributed min-label
// propagation.
func WCC(cfg MachineConfig, g *Graph) (*WCCResult, error) {
	return algos.WCC(cfg, g)
}

// PageRankResult holds per-vertex ranks.
type PageRankResult = algos.PageRankResult

// PageRank runs push-based synchronous PageRank for the given iteration
// count (damping 0 selects the conventional 0.85).
func PageRank(cfg MachineConfig, g *Graph, iterations int, damping float64) (*PageRankResult, error) {
	return algos.PageRank(cfg, g, iterations, damping)
}

// BCResult holds (approximate) betweenness centrality per vertex.
type BCResult = algos.BCResult

// Betweenness computes betweenness centrality from the sampled sources
// (distributed Brandes: forward sigma sweeps + backward dependency
// accumulation, both level-synchronous shuffles).
func Betweenness(cfg MachineConfig, g *Graph, sources []Vertex) (*BCResult, error) {
	return algos.Betweenness(cfg, g, sources)
}

// KCoreResult marks k-core membership per vertex.
type KCoreResult = algos.KCoreResult

// KCore computes the k-core (maximal subgraph of minimum degree k) by
// distributed peeling.
func KCore(cfg MachineConfig, g *Graph, k int64) (*KCoreResult, error) {
	return algos.KCore(cfg, g, k)
}
